// Package channel implements the communication-channel signatures of the
// paper's path propagation mechanism (Figure 2, Section III-B).
//
// A channel identifies a communicator by its placement in the world: the
// offset of its first member and the (stride, size) of each cartesian
// dimension it spans. Fiber and slice communicators of processor grids —
// the only communicators dense linear algebra algorithms build — always have
// such signatures. Aggregate channels are unions of channels that compose
// into a cartesian basis of the processor grid; the eager propagation policy
// switches a kernel off only once its statistics have been propagated along
// channels that jointly cover the whole grid, guaranteeing all ranks agree
// on the skip decision.
package channel

import (
	"fmt"
	"sort"
	"strings"

	"critter/internal/sim"
)

// Dim is one cartesian dimension of a channel: Size ranks separated by
// Stride in world-rank space.
type Dim struct {
	Stride int
	Size   int
}

// Channel is the placement signature of a communicator or of an aggregate
// of communicators. Dims are kept sorted by stride. The zero Channel
// describes a single rank (the empty aggregate).
type Channel struct {
	Offset int
	Dims   []Dim
}

// FromGroup derives the channel of a communicator from the world ranks of
// its members. ok is false when the sorted group is not an arithmetic
// progression (no cartesian signature exists; such channels never occur for
// grid fibers).
func FromGroup(group []int) (Channel, bool) {
	if len(group) == 0 {
		return Channel{}, false
	}
	// Grid fiber groups arrive already ascending; skip the defensive
	// sort-copy for them (communicator construction is per configuration,
	// and this path's allocations add up across a sweep).
	sorted := group
	if !isAscending(group) {
		sorted = append([]int(nil), group...)
		sort.Ints(sorted)
	}
	ch := Channel{Offset: sorted[0]}
	if len(sorted) == 1 {
		return ch, true
	}
	d := sorted[1] - sorted[0]
	if d <= 0 {
		return Channel{}, false
	}
	for i := 2; i < len(sorted); i++ {
		if sorted[i]-sorted[i-1] != d {
			return Channel{}, false
		}
	}
	ch.Dims = []Dim{{Stride: d, Size: len(sorted)}}
	return ch, true
}

// isAscending reports whether xs is strictly increasing.
func isAscending(xs []int) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return false
		}
	}
	return true
}

// P2P returns the size-2 channel the paper assigns to a point-to-point
// configuration between two world ranks.
func P2P(a, b int) Channel {
	if a > b {
		a, b = b, a
	}
	s := b - a
	if s == 0 {
		s = 1 // self-message; degenerate but keep a valid stride
	}
	return Channel{Offset: a, Dims: []Dim{{Stride: s, Size: 2}}}
}

// Ranks returns the number of world ranks the channel spans.
func (c Channel) Ranks() int {
	n := 1
	for _, d := range c.Dims {
		n *= d.Size
	}
	return n
}

// Hash returns a stable identifier for the channel derived purely from its
// (stride, size) dimensions, as in Figure 2 of the paper ("hash id generated
// purely from (stride, size)"). Channels differing only by offset share a
// hash, which is what lets symmetric fibers of a grid aggregate alike.
func (c Channel) Hash() uint64 {
	words := make([]uint64, 0, 2*len(c.Dims))
	for _, d := range c.Dims {
		words = append(words, uint64(d.Stride), uint64(d.Size))
	}
	return sim.Mix(words...)
}

// Contains reports whether every dimension of x already appears in c with
// identical stride and size.
func (c Channel) Contains(x Channel) bool {
	for _, xd := range x.Dims {
		found := false
		for _, cd := range c.Dims {
			if cd == xd {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Combine attempts to extend aggregate c with channel x so the union remains
// a cartesian set: after merging, dimensions sorted by stride must tile
// without interleaving (each next stride divisible by the span of the
// previous dimension). ok is false when the union is not cartesian, in which
// case c is returned unchanged.
func Combine(c, x Channel) (Channel, bool) {
	if x.Ranks() <= 1 {
		return c, true
	}
	if c.Contains(x) {
		return c, true
	}
	merged := append(append([]Dim(nil), c.Dims...), x.Dims...)
	sort.Slice(merged, func(i, j int) bool { return merged[i].Stride < merged[j].Stride })
	for i := 1; i < len(merged); i++ {
		span := merged[i-1].Stride * merged[i-1].Size
		if merged[i].Stride < span || merged[i].Stride%merged[i-1].Stride != 0 {
			return c, false
		}
	}
	off := c.Offset
	if len(c.Dims) == 0 || x.Offset < off {
		off = x.Offset
	}
	return Channel{Offset: off, Dims: merged}, true
}

// CoversWorld reports whether the aggregate's dimensions compose a complete
// cartesian basis of worldSize ranks: first stride 1, each subsequent stride
// equal to the span of the previous dimension, and total size equal to
// worldSize. The offset is ignored, matching the paper's offset-free channel
// hashing: symmetric fibers of a grid aggregate alike, and in an SPMD
// program every rank completes the same basis at the same collective.
func (c Channel) CoversWorld(worldSize int) bool {
	if worldSize == 1 {
		return true
	}
	if len(c.Dims) == 0 {
		return false
	}
	if c.Dims[0].Stride != 1 {
		return false
	}
	span := c.Dims[0].Stride * c.Dims[0].Size
	for _, d := range c.Dims[1:] {
		if d.Stride != span {
			return false
		}
		span *= d.Size
	}
	return span == worldSize
}

// String renders the channel for diagnostics, e.g. "@0[s1x4][s4x4]".
func (c Channel) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "@%d", c.Offset)
	for _, d := range c.Dims {
		fmt.Fprintf(&b, "[s%dx%d]", d.Stride, d.Size)
	}
	return b.String()
}
