// Package blas implements the dense basic linear algebra subprograms the
// paper's factorization libraries invoke: the level-3 routines gemm, syrk,
// trsm, trmm plus the level-1/2 helpers needed by the LAPACK layer.
//
// Matrices are column-major with an explicit leading dimension, matching
// LAPACK conventions: element (i, j) of an m-by-n matrix stored in a with
// leading dimension lda >= m lives at a[i+j*lda].
//
// The implementations favor obvious correctness over speed: experiment
// timings come from the virtual machine model (package sim), not from these
// loops, and the numerics only need to be right so the factorization tests
// can verify residuals.
package blas

import (
	"fmt"
	"math"
)

// Side selects the side of a triangular multiply or solve.
type Side int

// Side values.
const (
	Left Side = iota
	Right
)

// Uplo selects the stored triangle of a symmetric or triangular matrix.
type Uplo int

// Uplo values.
const (
	Lower Uplo = iota
	Upper
)

// Diag declares whether a triangular matrix has an implicit unit diagonal.
type Diag int

// Diag values.
const (
	NonUnit Diag = iota
	Unit
)

func checkDim(cond bool, format string, args ...any) {
	if !cond {
		panic("blas: " + fmt.Sprintf(format, args...))
	}
}

// Ddot returns x^T y over n elements with the given strides.
func Ddot(n int, x []float64, incx int, y []float64, incy int) float64 {
	s := 0.0
	for i := 0; i < n; i++ {
		s += x[i*incx] * y[i*incy]
	}
	return s
}

// Daxpy computes y += alpha*x over n strided elements.
func Daxpy(n int, alpha float64, x []float64, incx int, y []float64, incy int) {
	for i := 0; i < n; i++ {
		y[i*incy] += alpha * x[i*incx]
	}
}

// Dscal scales n strided elements of x by alpha.
func Dscal(n int, alpha float64, x []float64, incx int) {
	for i := 0; i < n; i++ {
		x[i*incx] *= alpha
	}
}

// Dnrm2 returns the Euclidean norm of n strided elements of x, guarding
// against overflow by scaling.
func Dnrm2(n int, x []float64, incx int) float64 {
	scale, ssq := 0.0, 1.0
	for i := 0; i < n; i++ {
		v := x[i*incx]
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			r := scale / av
			ssq = 1 + ssq*r*r
			scale = av
		} else {
			r := av / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Idamax returns the index of the element of largest absolute value among n
// strided elements of x (first such index on ties), or -1 when n <= 0.
func Idamax(n int, x []float64, incx int) int {
	if n <= 0 {
		return -1
	}
	best, bi := math.Abs(x[0]), 0
	for i := 1; i < n; i++ {
		if av := math.Abs(x[i*incx]); av > best {
			best, bi = av, i
		}
	}
	return bi
}

// Dgemv computes y = alpha*op(A)*x + beta*y for an m-by-n matrix A.
func Dgemv(trans bool, m, n int, alpha float64, a []float64, lda int, x []float64, incx int, beta float64, y []float64, incy int) {
	rows, cols := m, n
	if trans {
		rows, cols = n, m
	}
	for i := 0; i < rows; i++ {
		s := 0.0
		for j := 0; j < cols; j++ {
			if trans {
				s += a[j+i*lda] * x[j*incx]
			} else {
				s += a[i+j*lda] * x[j*incx]
			}
		}
		y[i*incy] = alpha*s + beta*y[i*incy]
	}
}

// Dger computes the rank-1 update A += alpha * x * y^T for an m-by-n A.
func Dger(m, n int, alpha float64, x []float64, incx int, y []float64, incy int, a []float64, lda int) {
	for j := 0; j < n; j++ {
		yj := alpha * y[j*incy]
		if yj == 0 {
			continue
		}
		for i := 0; i < m; i++ {
			a[i+j*lda] += x[i*incx] * yj
		}
	}
}

// Dgemm computes C = alpha*op(A)*op(B) + beta*C where op(A) is m-by-k and
// op(B) is k-by-n.
func Dgemm(transA, transB bool, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	checkDim(m >= 0 && n >= 0 && k >= 0, "gemm: negative dimension %dx%dx%d", m, n, k)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			c[i+j*ldc] *= beta
		}
	}
	if alpha == 0 || k == 0 {
		return
	}
	at := func(i, l int) float64 {
		if transA {
			return a[l+i*lda]
		}
		return a[i+l*lda]
	}
	bt := func(l, j int) float64 {
		if transB {
			return b[j+l*ldb]
		}
		return b[l+j*ldb]
	}
	for j := 0; j < n; j++ {
		for l := 0; l < k; l++ {
			blj := alpha * bt(l, j)
			if blj == 0 {
				continue
			}
			for i := 0; i < m; i++ {
				c[i+j*ldc] += at(i, l) * blj
			}
		}
	}
}

// Dsyrk computes the symmetric rank-k update
// C = alpha*A*A^T + beta*C (trans=false, A n-by-k) or
// C = alpha*A^T*A + beta*C (trans=true, A k-by-n),
// referencing only the uplo triangle of C.
func Dsyrk(uplo Uplo, trans bool, n, k int, alpha float64, a []float64, lda int, beta float64, c []float64, ldc int) {
	at := func(i, l int) float64 {
		if trans {
			return a[l+i*lda]
		}
		return a[i+l*lda]
	}
	for j := 0; j < n; j++ {
		lo, hi := 0, j+1
		if uplo == Lower {
			lo, hi = j, n
		}
		for i := lo; i < hi; i++ {
			s := 0.0
			for l := 0; l < k; l++ {
				s += at(i, l) * at(j, l)
			}
			c[i+j*ldc] = alpha*s + beta*c[i+j*ldc]
		}
	}
}

// materializeTri returns op(A) as a dense n-by-n matrix (zero-filled outside
// the triangle, with unit diagonal applied when diag is Unit).
func materializeTri(uplo Uplo, trans bool, diag Diag, n int, a []float64, lda int) []float64 {
	t := make([]float64, n*n)
	for j := 0; j < n; j++ {
		lo, hi := 0, j+1
		if uplo == Lower {
			lo, hi = j, n
		}
		for i := lo; i < hi; i++ {
			v := a[i+j*lda]
			if diag == Unit && i == j {
				v = 1
			}
			if trans {
				t[j+i*n] = v
			} else {
				t[i+j*n] = v
			}
		}
	}
	return t
}

// lowerOrUpper reports whether the materialized op(A) is lower triangular.
func lowerOrUpper(uplo Uplo, trans bool) bool {
	return (uplo == Lower) != trans
}

// Dtrsm solves op(A)*X = alpha*B (side Left) or X*op(A) = alpha*B (side
// Right) for X, overwriting the m-by-n matrix B. A is the relevant triangle
// of an m-by-m (Left) or n-by-n (Right) triangular matrix.
func Dtrsm(side Side, uplo Uplo, transA bool, diag Diag, m, n int, alpha float64, a []float64, lda int, b []float64, ldb int) {
	dim := m
	if side == Right {
		dim = n
	}
	t := materializeTri(uplo, transA, diag, dim, a, lda)
	isLower := lowerOrUpper(uplo, transA)
	if alpha != 1 {
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				b[i+j*ldb] *= alpha
			}
		}
	}
	if side == Left {
		// Solve T * X = B column by column.
		for j := 0; j < n; j++ {
			col := b[j*ldb : j*ldb+m]
			solveTriVec(t, dim, isLower, col)
		}
		return
	}
	// Side == Right: X * T = B, i.e. T^T * X^T = B^T. Solve per row of B.
	row := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			row[j] = b[i+j*ldb]
		}
		solveTriVecTrans(t, dim, isLower, row)
		for j := 0; j < n; j++ {
			b[i+j*ldb] = row[j]
		}
	}
}

// solveTriVec solves T x = b in place for dense triangular T (dim x dim,
// column-major, stride dim).
func solveTriVec(t []float64, dim int, isLower bool, x []float64) {
	if isLower {
		for i := 0; i < dim; i++ {
			s := x[i]
			for k := 0; k < i; k++ {
				s -= t[i+k*dim] * x[k]
			}
			x[i] = s / t[i+i*dim]
		}
		return
	}
	for i := dim - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < dim; k++ {
			s -= t[i+k*dim] * x[k]
		}
		x[i] = s / t[i+i*dim]
	}
}

// solveTriVecTrans solves T^T x = b in place.
func solveTriVecTrans(t []float64, dim int, isLower bool, x []float64) {
	// T^T is upper when T is lower.
	if isLower {
		for i := dim - 1; i >= 0; i-- {
			s := x[i]
			for k := i + 1; k < dim; k++ {
				s -= t[k+i*dim] * x[k]
			}
			x[i] = s / t[i+i*dim]
		}
		return
	}
	for i := 0; i < dim; i++ {
		s := x[i]
		for k := 0; k < i; k++ {
			s -= t[k+i*dim] * x[k]
		}
		x[i] = s / t[i+i*dim]
	}
}

// Dtrmm computes B = alpha*op(A)*B (side Left) or B = alpha*B*op(A) (side
// Right), overwriting the m-by-n matrix B.
func Dtrmm(side Side, uplo Uplo, transA bool, diag Diag, m, n int, alpha float64, a []float64, lda int, b []float64, ldb int) {
	dim := m
	if side == Right {
		dim = n
	}
	t := materializeTri(uplo, transA, diag, dim, a, lda)
	if side == Left {
		col := make([]float64, m)
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				col[i] = b[i+j*ldb]
			}
			for i := 0; i < m; i++ {
				s := 0.0
				for k := 0; k < m; k++ {
					s += t[i+k*dim] * col[k]
				}
				b[i+j*ldb] = alpha * s
			}
		}
		return
	}
	row := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			row[j] = b[i+j*ldb]
		}
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += row[k] * t[k+j*dim]
			}
			b[i+j*ldb] = alpha * s
		}
	}
}
