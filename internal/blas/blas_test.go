package blas

import (
	"math"
	"testing"
	"testing/quick"

	"critter/internal/sim"
)

// randMat fills an m-by-n column-major matrix with deterministic values.
func randMat(m, n int, seed uint64) []float64 {
	r := sim.NewRNG(seed)
	a := make([]float64, m*n)
	for i := range a {
		a[i] = 2*r.Float64() - 1
	}
	return a
}

// naiveGemm is a reference implementation over fresh matrices.
func naiveGemm(transA, transB bool, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	at := func(i, l int) float64 {
		if transA {
			return a[l+i*lda]
		}
		return a[i+l*lda]
	}
	bt := func(l, j int) float64 {
		if transB {
			return b[j+l*ldb]
		}
		return b[l+j*ldb]
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for l := 0; l < k; l++ {
				s += at(i, l) * bt(l, j)
			}
			c[i+j*ldc] = alpha*s + beta*c[i+j*ldc]
		}
	}
}

func maxAbsDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

func TestDdotAxpyScal(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if got := Ddot(3, x, 1, y, 1); got != 32 {
		t.Errorf("dot = %g, want 32", got)
	}
	Daxpy(3, 2, x, 1, y, 1)
	if y[0] != 6 || y[1] != 9 || y[2] != 12 {
		t.Errorf("axpy got %v", y)
	}
	Dscal(3, 0.5, y, 1)
	if y[0] != 3 || y[1] != 4.5 || y[2] != 6 {
		t.Errorf("scal got %v", y)
	}
}

func TestStridedOps(t *testing.T) {
	x := []float64{1, 0, 2, 0, 3, 0}
	y := []float64{1, 1, 1}
	if got := Ddot(3, x, 2, y, 1); got != 6 {
		t.Errorf("strided dot = %g, want 6", got)
	}
}

func TestDnrm2(t *testing.T) {
	if got := Dnrm2(2, []float64{3, 4}, 1); math.Abs(got-5) > 1e-15 {
		t.Errorf("nrm2 = %g, want 5", got)
	}
	if Dnrm2(0, nil, 1) != 0 {
		t.Error("empty nrm2 should be 0")
	}
	// Overflow guard: huge values must not overflow to +Inf.
	big := []float64{1e200, 1e200}
	if got := Dnrm2(2, big, 1); math.IsInf(got, 1) {
		t.Error("nrm2 overflowed")
	}
}

func TestIdamax(t *testing.T) {
	if got := Idamax(4, []float64{1, -7, 3, 7}, 1); got != 1 {
		t.Errorf("idamax = %d, want 1 (first maximal)", got)
	}
	if Idamax(0, nil, 1) != -1 {
		t.Error("empty idamax should be -1")
	}
}

func TestDgemvAgainstGemm(t *testing.T) {
	m, n := 7, 5
	a := randMat(m, n, 1)
	x := randMat(n, 1, 2)
	y := randMat(m, 1, 3)
	yRef := append([]float64(nil), y...)
	Dgemv(false, m, n, 1.3, a, m, x, 1, 0.7, y, 1)
	naiveGemm(false, false, m, 1, n, 1.3, a, m, x, n, 0.7, yRef, m)
	if d := maxAbsDiff(y, yRef); d > 1e-13 {
		t.Errorf("gemv mismatch %g", d)
	}
	// Transposed.
	x2 := randMat(m, 1, 4)
	y2 := randMat(n, 1, 5)
	y2Ref := append([]float64(nil), y2...)
	Dgemv(true, m, n, -0.5, a, m, x2, 1, 1.1, y2, 1)
	naiveGemm(true, false, n, 1, m, -0.5, a, m, x2, m, 1.1, y2Ref, n)
	if d := maxAbsDiff(y2, y2Ref); d > 1e-13 {
		t.Errorf("gemv^T mismatch %g", d)
	}
}

func TestDger(t *testing.T) {
	m, n := 4, 3
	a := randMat(m, n, 7)
	ref := append([]float64(nil), a...)
	x := randMat(m, 1, 8)
	y := randMat(n, 1, 9)
	Dger(m, n, 2.5, x, 1, y, 1, a, m)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			ref[i+j*m] += 2.5 * x[i] * y[j]
		}
	}
	if d := maxAbsDiff(a, ref); d > 1e-13 {
		t.Errorf("ger mismatch %g", d)
	}
}

func TestDgemmAllTransCombos(t *testing.T) {
	m, n, k := 6, 5, 4
	for _, ta := range []bool{false, true} {
		for _, tb := range []bool{false, true} {
			lda, ldb := m, k
			if ta {
				lda = k
			}
			if tb {
				ldb = n
			}
			a := randMat(lda, m*k/lda, uint64(10+btoi(ta)))
			b := randMat(ldb, k*n/ldb, uint64(20+btoi(tb)))
			c := randMat(m, n, 30)
			ref := append([]float64(nil), c...)
			Dgemm(ta, tb, m, n, k, 1.5, a, lda, b, ldb, -0.5, c, m)
			naiveGemm(ta, tb, m, n, k, 1.5, a, lda, b, ldb, -0.5, ref, m)
			if d := maxAbsDiff(c, ref); d > 1e-12 {
				t.Errorf("gemm ta=%v tb=%v mismatch %g", ta, tb, d)
			}
		}
	}
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestDgemmEdgeCases(t *testing.T) {
	// k=0 reduces to C = beta*C.
	c := []float64{1, 2, 3, 4}
	Dgemm(false, false, 2, 2, 0, 1, nil, 1, nil, 1, 2, c, 2)
	for i, want := range []float64{2, 4, 6, 8} {
		if c[i] != want {
			t.Errorf("k=0 gemm c[%d]=%g want %g", i, c[i], want)
		}
	}
	// alpha=0 also reduces to scaling.
	c2 := []float64{1, 1, 1, 1}
	a := []float64{1, 2, 3, 4}
	Dgemm(false, false, 2, 2, 2, 0, a, 2, a, 2, 3, c2, 2)
	for i := range c2 {
		if c2[i] != 3 {
			t.Errorf("alpha=0 gemm c[%d]=%g want 3", i, c2[i])
		}
	}
}

func TestDgemmSubmatrixStride(t *testing.T) {
	// Operate on a 2x2 block inside a 4x4 matrix via lda.
	a := randMat(4, 4, 42)
	b := randMat(4, 4, 43)
	c := make([]float64, 4*4)
	Dgemm(false, false, 2, 2, 2, 1, a[1+1*4:], 4, b[1+1*4:], 4, 0, c[1+1*4:], 4)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			s := 0.0
			for l := 0; l < 2; l++ {
				s += a[1+i+(1+l)*4] * b[1+l+(1+j)*4]
			}
			if got := c[1+i+(1+j)*4]; math.Abs(got-s) > 1e-13 {
				t.Errorf("submatrix gemm (%d,%d) = %g want %g", i, j, got, s)
			}
		}
	}
}

func TestDsyrkMatchesGemm(t *testing.T) {
	n, k := 6, 4
	for _, trans := range []bool{false, true} {
		for _, uplo := range []Uplo{Lower, Upper} {
			lda := n
			if trans {
				lda = k
			}
			a := randMat(lda, n*k/lda, 50)
			c := randMat(n, n, 51)
			// Symmetrize C so full-gemm reference matches on the triangle.
			for i := 0; i < n; i++ {
				for j := 0; j < i; j++ {
					c[i+j*n] = c[j+i*n]
				}
			}
			ref := append([]float64(nil), c...)
			Dsyrk(uplo, trans, n, k, 2, a, lda, 0.5, c, n)
			naiveGemm(trans, !trans, n, n, k, 2, a, lda, a, lda, 0.5, ref, n)
			for j := 0; j < n; j++ {
				lo, hi := 0, j+1
				if uplo == Lower {
					lo, hi = j, n
				}
				for i := lo; i < hi; i++ {
					if math.Abs(c[i+j*n]-ref[i+j*n]) > 1e-12 {
						t.Errorf("syrk trans=%v uplo=%v (%d,%d): %g vs %g",
							trans, uplo, i, j, c[i+j*n], ref[i+j*n])
					}
				}
			}
		}
	}
}

// triRandMat builds a well-conditioned triangular matrix.
func triRandMat(uplo Uplo, n int, seed uint64) []float64 {
	a := randMat(n, n, seed)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			inTri := i >= j // lower
			if uplo == Upper {
				inTri = i <= j
			}
			if !inTri {
				a[i+j*n] = 0
			}
		}
		a[j+j*n] = 3 + math.Abs(a[j+j*n]) // diagonal dominance
	}
	return a
}

func TestDtrsmAllCombos(t *testing.T) {
	m, n := 5, 4
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Lower, Upper} {
			for _, trans := range []bool{false, true} {
				for _, diag := range []Diag{NonUnit, Unit} {
					dim := m
					if side == Right {
						dim = n
					}
					a := triRandMat(uplo, dim, 60)
					b := randMat(m, n, 61)
					x := append([]float64(nil), b...)
					Dtrsm(side, uplo, trans, diag, m, n, 1.5, a, dim, x, m)
					// Verify op(A)*X = 1.5*B (or X*op(A)).
					check := make([]float64, m*n)
					tmat := materializeTri(uplo, trans, diag, dim, a, dim)
					if side == Left {
						naiveGemm(false, false, m, n, m, 1, tmat, m, x, m, 0, check, m)
					} else {
						naiveGemm(false, false, m, n, n, 1, x, m, tmat, n, 0, check, m)
					}
					want := make([]float64, m*n)
					for i := range b {
						want[i] = 1.5 * b[i]
					}
					if d := maxAbsDiff(check, want); d > 1e-11 {
						t.Errorf("trsm side=%v uplo=%v trans=%v diag=%v residual %g",
							side, uplo, trans, diag, d)
					}
				}
			}
		}
	}
}

func TestDtrmmAllCombos(t *testing.T) {
	m, n := 5, 4
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Lower, Upper} {
			for _, trans := range []bool{false, true} {
				for _, diag := range []Diag{NonUnit, Unit} {
					dim := m
					if side == Right {
						dim = n
					}
					a := triRandMat(uplo, dim, 70)
					b := randMat(m, n, 71)
					got := append([]float64(nil), b...)
					Dtrmm(side, uplo, trans, diag, m, n, 2, a, dim, got, m)
					ref := make([]float64, m*n)
					tmat := materializeTri(uplo, trans, diag, dim, a, dim)
					if side == Left {
						naiveGemm(false, false, m, n, m, 2, tmat, m, b, m, 0, ref, m)
					} else {
						naiveGemm(false, false, m, n, n, 2, b, m, tmat, n, 0, ref, m)
					}
					if d := maxAbsDiff(got, ref); d > 1e-11 {
						t.Errorf("trmm side=%v uplo=%v trans=%v diag=%v mismatch %g",
							side, uplo, trans, diag, d)
					}
				}
			}
		}
	}
}

func TestTrsmTrmmRoundTripProperty(t *testing.T) {
	// trsm(trmm(B)) == B for any triangular system: a strong invariant.
	f := func(seed uint64) bool {
		m, n := 6, 3
		a := triRandMat(Lower, m, seed)
		b := randMat(m, n, seed+1)
		x := append([]float64(nil), b...)
		Dtrmm(Left, Lower, false, NonUnit, m, n, 1, a, m, x, m)
		Dtrsm(Left, Lower, false, NonUnit, m, n, 1, a, m, x, m)
		return maxAbsDiff(x, b) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGemmPanicsOnNegativeDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dgemm(false, false, -1, 2, 2, 1, nil, 1, nil, 1, 0, nil, 1)
}
