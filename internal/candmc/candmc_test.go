package candmc

import (
	"math"
	"testing"

	"critter/internal/blas"
	"critter/internal/critter"
	"critter/internal/grid"
	"critter/internal/lapack"
	"critter/internal/mpi"
	"critter/internal/sim"
)

func runGrid(t *testing.T, pr, pc int, eps float64, body func(p *critter.Profiler, g *grid.Grid2D)) {
	t.Helper()
	w := mpi.NewWorld(pr*pc, sim.DefaultMachine(), 13)
	if err := w.Run(func(c *mpi.Comm) {
		p, cc := critter.New(c, critter.Options{Policy: critter.Conditional, Eps: eps})
		g := grid.New2D(cc, pr, pc)
		body(p, g)
	}); err != nil {
		t.Fatalf("world: %v", err)
	}
}

func frob(a []float64) float64 {
	s := 0.0
	for _, v := range a {
		s += v * v
	}
	return math.Sqrt(s)
}

func TestConfigValidate(t *testing.T) {
	ok := Config{M: 64, N: 16, B: 4, PR: 2, PC: 2}
	if err := ok.Validate(4); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{M: 64, N: 16, B: 4, PR: 2, PC: 3},
		{M: 66, N: 16, B: 4, PR: 2, PC: 2},
		{M: 64, N: 18, B: 4, PR: 2, PC: 2},
		{M: 16, N: 64, B: 4, PR: 2, PC: 2},
		{M: 96, N: 16, B: 4, PR: 3, PC: 2, Panel: PanelTSQR}, // non-power-of-2 PR
	}
	for i, c := range bad {
		if c.Validate(c.PR*c.PC) == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// gramCheck factors with the given config and verifies A^T A == R^T R.
func gramCheck(t *testing.T, pr, pc int, cfg Config) {
	t.Helper()
	if err := cfg.Validate(pr * pc); err != nil {
		t.Fatal(err)
	}
	runGrid(t, pr, pc, 0, func(p *critter.Profiler, g *grid.Grid2D) {
		a := NewMatrix(g, cfg)
		a.FillGeneral(9)
		orig := a.GatherDense(0)
		QR(p, a, cfg)
		r := a.GatherDense(0)
		if g.All.Rank() != 0 {
			return
		}
		m, n := cfg.M, cfg.N
		for j := 0; j < n; j++ {
			for i := j + 1; i < m; i++ {
				r[i+j*m] = 0
			}
		}
		ata := make([]float64, n*n)
		rtr := make([]float64, n*n)
		blas.Dgemm(true, false, n, n, m, 1, orig, m, orig, m, 0, ata, n)
		blas.Dgemm(true, false, n, n, m, 1, r, m, r, m, 0, rtr, n)
		diff := make([]float64, n*n)
		for i := range diff {
			diff[i] = ata[i] - rtr[i]
		}
		if rel := frob(diff) / frob(ata); rel > 1e-8 {
			t.Errorf("%s grid %dx%d %dx%d b=%d: ||A^TA-R^TR||/||A^TA|| = %g",
				cfg.Panel, pr, pc, cfg.M, cfg.N, cfg.B, rel)
		}
	})
}

func TestQRGramTSQR2x2(t *testing.T) {
	gramCheck(t, 2, 2, Config{M: 64, N: 16, B: 4, PR: 2, PC: 2, Panel: PanelTSQR})
}

func TestQRGramCholQR2(t *testing.T) {
	gramCheck(t, 2, 2, Config{M: 64, N: 16, B: 4, PR: 2, PC: 2, Panel: PanelCholQR2})
}

func TestQRGramTallGrid(t *testing.T) {
	gramCheck(t, 4, 1, Config{M: 64, N: 16, B: 4, PR: 4, PC: 1, Panel: PanelTSQR})
}

func TestQRGramWideGrid(t *testing.T) {
	gramCheck(t, 2, 4, Config{M: 64, N: 32, B: 4, PR: 2, PC: 4, Panel: PanelTSQR})
}

func TestQRGramLargerBlock(t *testing.T) {
	gramCheck(t, 2, 2, Config{M: 64, N: 32, B: 8, PR: 2, PC: 2, Panel: PanelCholQR2})
}

func TestQRGramSingleRank(t *testing.T) {
	gramCheck(t, 1, 1, Config{M: 32, N: 16, B: 4, PR: 1, PC: 1, Panel: PanelTSQR})
}

// TestHouseholderReconstruction verifies the core identity of the
// reconstruction on a dense local problem: given an orthonormal tall Q1
// (negated), LU(Q1 - [I;0]) = Y W and T = -W Y0^{-T} yield
// Q1 = [I;0] - Y T Y0^T.
func TestHouseholderReconstruction(t *testing.T) {
	m, b := 12, 4
	// Build an orthonormal Q1 from a QR factorization.
	a := make([]float64, m*b)
	r := sim.NewRNG(3)
	for i := range a {
		a[i] = 2*r.Float64() - 1
	}
	tau := make([]float64, b)
	qr := append([]float64(nil), a...)
	lapack.Dgeqr2(m, b, qr, m, tau)
	q1 := make([]float64, m*b)
	lapack.Dorgqr(m, b, qr, m, tau, q1, m)
	// Negate (the reconstruction-robust sign choice).
	for i := range q1 {
		q1[i] = -q1[i]
	}
	// LU(Q1 - [I;0]).
	work := append([]float64(nil), q1...)
	for i := 0; i < b; i++ {
		work[i+i*m] -= 1
	}
	if err := lapack.DgetrfNoPiv(m, b, work, m); err != nil {
		t.Fatalf("unpivoted LU: %v", err)
	}
	// Y: unit lower trapezoidal; W: upper b x b.
	y := make([]float64, m*b)
	w := make([]float64, b*b)
	for c := 0; c < b; c++ {
		y[c+c*m] = 1
		for rr := c + 1; rr < m; rr++ {
			y[rr+c*m] = work[rr+c*m]
		}
		for rr := 0; rr <= c; rr++ {
			w[rr+c*b] = work[rr+c*m]
		}
	}
	// T = -W Y0^{-T}.
	tm := append([]float64(nil), w...)
	y0 := make([]float64, b*b)
	for c := 0; c < b; c++ {
		y0[c+c*b] = 1
		for rr := c + 1; rr < b; rr++ {
			y0[rr+c*b] = y[rr+c*m]
		}
	}
	blas.Dtrsm(blas.Right, blas.Lower, true, blas.Unit, b, b, -1, y0, b, tm, b)
	// Check Q1 == [I;0] - Y T Y0^T.
	yt := make([]float64, m*b)
	blas.Dgemm(false, false, m, b, b, 1, y, m, tm, b, 0, yt, m)
	rec := make([]float64, m*b)
	blas.Dgemm(false, true, m, b, b, -1, yt, m, y0, b, 0, rec, m)
	for i := 0; i < b; i++ {
		rec[i+i*m] += 1
	}
	for i := range rec {
		if math.Abs(rec[i]-q1[i]) > 1e-10 {
			t.Fatalf("reconstruction mismatch at %d: %g vs %g", i, rec[i], q1[i])
		}
	}
}

func TestSelectiveExecutionCompletes(t *testing.T) {
	cfg := Config{M: 64, N: 32, B: 4, PR: 2, PC: 2, Panel: PanelTSQR}
	runGrid(t, 2, 2, 0.4, func(p *critter.Profiler, g *grid.Grid2D) {
		a := NewMatrix(g, cfg)
		a.FillGeneral(9)
		QR(p, a, cfg)
		rep := p.Report()
		if g.All.Rank() == 0 && rep.Skipped == 0 {
			t.Error("no kernels skipped at loose tolerance")
		}
	})
}

func TestManyDistinctKernelSignatures(t *testing.T) {
	// CANDMC's shrinking trailing matrix produces many distinct kernel
	// signatures (the property that limits its tuning speedup, Fig. 5a).
	cfg := Config{M: 64, N: 32, B: 4, PR: 2, PC: 2, Panel: PanelTSQR}
	runGrid(t, 2, 2, 0, func(p *critter.Profiler, g *grid.Grid2D) {
		a := NewMatrix(g, cfg)
		a.FillGeneral(9)
		QR(p, a, cfg)
		if g.All.Rank() == 0 && p.KernelCount() < 12 {
			t.Errorf("expected a rich kernel population, got %d", p.KernelCount())
		}
	})
}

func TestMatrixGatherRoundTrip(t *testing.T) {
	cfg := Config{M: 32, N: 16, B: 4, PR: 2, PC: 2}
	runGrid(t, 2, 2, 0, func(p *critter.Profiler, g *grid.Grid2D) {
		a := NewMatrix(g, cfg)
		a.FillGeneral(4)
		full := a.GatherDense(0)
		if g.All.Rank() != 0 {
			return
		}
		for j := 0; j < cfg.N; j++ {
			for i := 0; i < cfg.M; i++ {
				if want := Entry(i, j, 4); full[i+j*cfg.M] != want {
					t.Fatalf("gathered (%d,%d) = %g, want %g", i, j, full[i+j*cfg.M], want)
				}
			}
		}
	})
}
