// Package candmc implements a pipelined 2D Householder QR factorization
// modeled on CANDMC (Solomonik), the paper's third case study: panels are
// factorized with TSQR (binary exchange tree over the process column) or
// CholeskyQR2, the Householder representation Y, T is reconstructed from the
// explicit panel orthogonal factor via an unpivoted LU (Ballard et al.), and
// the trailing matrix is updated with (I - Y T^T Y^T)^T applied via
// broadcasts along process rows and reductions along process columns.
package candmc

import (
	"fmt"
	"math/bits"

	"critter/internal/blas"
	"critter/internal/critter"
	"critter/internal/grid"
)

// PanelMethod selects the panel factorization algorithm.
type PanelMethod int

// Panel factorization methods.
const (
	// PanelTSQR uses a binary-exchange TSQR tree (local geqrf kernels and
	// sendrecv exchanges of R factors), then forms the explicit panel Q by
	// a triangular solve.
	PanelTSQR PanelMethod = iota
	// PanelCholQR2 uses CholeskyQR2: two rounds of Gram-matrix assembly
	// (syrk + allreduce), Cholesky, and triangular solve.
	PanelCholQR2
)

func (m PanelMethod) String() string {
	if m == PanelCholQR2 {
		return "cholqr2"
	}
	return "tsqr"
}

// Config parameterizes the factorization: matrix shape M x N, block size B
// (both the panel width and the block-cyclic distribution block), process
// grid PR x PC, and the panel method. These mirror the paper's third case
// study (Section V-C: b = 8*2^(v%5), grid 64*2^floor(v/5) x 64/2^floor(v/5)).
type Config struct {
	M, N   int
	B      int
	PR, PC int
	Panel  PanelMethod
}

// Validate checks divisibility and grid constraints.
func (c Config) Validate(worldSize int) error {
	switch {
	case c.PR*c.PC != worldSize:
		return fmt.Errorf("candmc: grid %dx%d != world %d", c.PR, c.PC, worldSize)
	case c.M%(c.B*c.PR) != 0:
		return fmt.Errorf("candmc: M=%d not divisible by B*PR=%d", c.M, c.B*c.PR)
	case c.N%(c.B*c.PC) != 0:
		return fmt.Errorf("candmc: N=%d not divisible by B*PC=%d", c.N, c.B*c.PC)
	case c.M < c.N:
		return fmt.Errorf("candmc: requires M >= N (%d < %d)", c.M, c.N)
	case c.Panel == PanelTSQR && bits.OnesCount(uint(c.PR)) != 1:
		return fmt.Errorf("candmc: TSQR requires power-of-two PR, got %d", c.PR)
	}
	return nil
}

// Matrix is the 2D block-cyclic distributed matrix: B x B blocks, block
// (I, J) on grid rank (I mod pr, J mod pc). Local storage is column-major
// rloc x cloc; with the divisibility Validate enforces, every rank owns
// exactly M/pr x N/pc.
type Matrix struct {
	G          *grid.Grid2D
	M, N, B    int
	RowD, ColD grid.Cyclic
	RLoc, CLoc int
	Data       []float64
}

// NewMatrix allocates the local part of an M x N matrix for cfg's layout.
func NewMatrix(g *grid.Grid2D, cfg Config) *Matrix {
	m := &Matrix{
		G: g, M: cfg.M, N: cfg.N, B: cfg.B,
		RowD: grid.Cyclic{N: cfg.M, BS: cfg.B, P: cfg.PR},
		ColD: grid.Cyclic{N: cfg.N, BS: cfg.B, P: cfg.PC},
	}
	m.RLoc = cfg.M / cfg.PR
	m.CLoc = cfg.N / cfg.PC
	m.Data = make([]float64, m.RLoc*m.CLoc)
	return m
}

// FillGeneral fills the local part with a deterministic dense test matrix
// (consistent across distributions).
func (m *Matrix) FillGeneral(seed uint64) {
	for lc := 0; lc < m.CLoc; lc++ {
		gc := m.ColD.GlobalIndexOf(m.G.MyCol, lc)
		for lr := 0; lr < m.RLoc; lr++ {
			gr := m.RowD.GlobalIndexOf(m.G.MyRow, lr)
			m.Data[lr+lc*m.RLoc] = entry(gr, gc, seed)
		}
	}
}

// Entry returns the deterministic test-matrix value at global (i, j).
func Entry(i, j int, seed uint64) float64 { return entry(i, j, seed) }

func entry(i, j int, seed uint64) float64 {
	h := seed + uint64(i)*0x9e3779b97f4a7c15 + uint64(j)*0xbf58476d1ce4e5b9
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	v := 2*float64(h>>11)/(1<<53) - 1
	if i == j {
		v += 2 // keep panels well conditioned for CholeskyQR2
	}
	return v
}

// GatherDense assembles the full matrix on world rank root over the raw
// (unprofiled) communicator.
func (m *Matrix) GatherDense(root int) []float64 {
	raw := m.G.All.Raw()
	var all []float64
	if raw.Rank() == root {
		all = make([]float64, m.RLoc*m.CLoc*raw.Size())
	}
	raw.Gather(root, m.Data, all)
	if raw.Rank() != root {
		return nil
	}
	full := make([]float64, m.M*m.N)
	per := m.RLoc * m.CLoc
	for r := 0; r < raw.Size(); r++ {
		row, col := r/m.G.PC, r%m.G.PC
		local := all[r*per : (r+1)*per]
		for lc := 0; lc < m.CLoc; lc++ {
			gc := m.ColD.GlobalIndexOf(col, lc)
			for lr := 0; lr < m.RLoc; lr++ {
				gr := m.RowD.GlobalIndexOf(row, lr)
				full[gr+gc*m.M] = local[lr+lc*m.RLoc]
			}
		}
	}
	return full
}

// localRowStart returns the first local row index whose global row is >= g
// (g must be a multiple of B).
func (m *Matrix) localRowStart(g int) int {
	blk := g / m.B
	row := m.G.MyRow
	// Number of local blocks with global block index < blk.
	n := blk / m.PRBlocks()
	if blk%m.PRBlocks() > row {
		n++
	}
	return n * m.B
}

// PRBlocks returns the number of process rows (blocks cycle over them).
func (m *Matrix) PRBlocks() int { return m.G.PR }

// localColStart is the column analogue of localRowStart.
func (m *Matrix) localColStart(g int) int {
	blk := g / m.B
	col := m.G.MyCol
	n := blk / m.G.PC
	if blk%m.G.PC > col {
		n++
	}
	return n * m.B
}

// QR factorizes the distributed matrix in place: on return the upper
// triangle (banded by panels) holds R and the panel columns hold the
// reconstructed Householder vectors Y. All kernels run through the
// profiler.
func QR(p *critter.Profiler, a *Matrix, cfg Config) {
	b := cfg.B
	g := a.G
	npanels := a.N / b
	for t := 0; t < npanels; t++ {
		rt0 := t * b // first global row of the panel
		ct0 := t * b // first global col of the panel
		ct1 := ct0 + b
		inPanelCol := g.MyCol == t%g.PC
		lr0 := a.localRowStart(rt0)
		rloc := a.RLoc - lr0

		var y, tmat, rtile []float64
		if inPanelCol {
			y, tmat, rtile = panelFactor(p, a, cfg, t, lr0, rloc)
		}
		// Trailing update: broadcast Y and T along process rows, then
		// W1 = Y^T A (column-comm reduction), W2 = T^T W1, A -= Y W2.
		lc1 := a.localColStart(ct1)
		cloc := a.CLoc - lc1
		rootInRow := t % g.PC
		ybuf := y
		if !inPanelCol {
			ybuf = make([]float64, rloc*b)
		}
		if rloc > 0 {
			g.Row.Bcast(rootInRow, ybuf)
		}
		tbuf := tmat
		if !inPanelCol {
			tbuf = make([]float64, b*b)
		}
		g.Row.Bcast(rootInRow, tbuf)
		if cloc > 0 {
			w1 := make([]float64, b*cloc)
			if rloc > 0 {
				trail := a.Data[lr0+lc1*a.RLoc:]
				p.Gemm(true, false, b, cloc, rloc, 1, ybuf, rloc, trail, a.RLoc, 0, w1, b)
			}
			w1g := make([]float64, b*cloc)
			g.Col.Allreduce(w1, w1g, 0)
			p.Trmm(blas.Left, blas.Upper, true, blas.NonUnit, b, cloc, 1, tbuf, b, w1g, b)
			if rloc > 0 {
				trail := a.Data[lr0+lc1*a.RLoc:]
				p.Gemm(false, false, rloc, cloc, b, -1, ybuf, rloc, w1g, b, 1, trail, a.RLoc)
			}
		}
		// Store Y into the panel column, then the R tile's upper triangle
		// at its owner (in this order: Y's top block shares rows with the
		// R tile, LAPACK-style, with Y's unit diagonal implicit).
		if inPanelCol {
			lc0 := a.localColStart(ct0)
			for c := 0; c < b; c++ {
				copy(a.Data[lr0+(lc0+c)*a.RLoc:lr0+(lc0+c)*a.RLoc+rloc], y[c*rloc:(c+1)*rloc])
			}
			if g.MyRow == t%g.PR {
				lrT := a.localRowStart(t * b)
				for c := 0; c < b; c++ {
					for r := 0; r <= c; r++ {
						a.Data[lrT+r+(lc0+c)*a.RLoc] = rtile[r+c*b]
					}
				}
			}
		}
	}
}

// panelFactor factorizes panel t on the panel process column: it computes
// the explicit orthogonal panel factor Q1 (negated for reconstruction
// robustness), reconstructs the Householder representation (Y, T), and
// returns the local Y rows, T, and the panel's R tile (written back by the
// caller after Y). Collective over the process-column communicator.
func panelFactor(p *critter.Profiler, a *Matrix, cfg Config, t, lr0, rloc int) (y, tmat, rtile []float64) {
	b := cfg.B
	g := a.G
	lc0 := a.localColStart(t * b)
	// Copy the local panel rows into q (rloc x b, contiguous).
	q := make([]float64, rloc*b)
	for c := 0; c < b; c++ {
		copy(q[c*rloc:(c+1)*rloc], a.Data[lr0+(lc0+c)*a.RLoc:lr0+(lc0+c)*a.RLoc+rloc])
	}
	var r []float64
	if cfg.Panel == PanelCholQR2 {
		r = cholQR2(p, g, q, rloc, b)
	} else {
		r = tsqr(p, g, q, rloc, b, t)
		// Form explicit Q = P R^{-1} and refine once (CholeskyQR-style
		// second pass) for orthogonality.
		if rloc > 0 {
			p.Trsm(blas.Right, blas.Upper, false, blas.NonUnit, rloc, b, 1, r, b, q, rloc)
		}
		r2 := cholQR(p, g, q, rloc, b)
		p.Trmm(blas.Left, blas.Upper, false, blas.NonUnit, b, b, 1, r2, b, r, b)
	}
	// Negate Q and R so the reconstruction LU has pivots bounded away
	// from zero (diag(Q1)+1 ~ 1): A = (-Q1)(-R).
	for i := range q {
		q[i] = -q[i]
	}
	for i := range r {
		r[i] = -r[i]
	}
	// Householder reconstruction: LU(Q1 - [I;0]) = Y W, T = -W Y0^{-T}.
	topRow := t % g.PR
	isTop := g.MyRow == topRow
	w := make([]float64, b*b)
	tmat = make([]float64, b*b)
	if isTop {
		// The top b x b block of the panel is this rank's first b local
		// rows at/after lr0.
		top := make([]float64, b*b)
		for c := 0; c < b; c++ {
			copy(top[c*b:(c+1)*b], q[c*rloc:c*rloc+b])
		}
		for i := 0; i < b; i++ {
			top[i+i*b] -= 1
		}
		if err := p.GetrfNoPiv(b, b, top, b); err != nil {
			_ = err // tolerated under selective execution
		}
		// Split factors: W = upper incl. diagonal, L0 = unit lower.
		l0 := make([]float64, b*b)
		for c := 0; c < b; c++ {
			for rr := 0; rr <= c; rr++ {
				w[rr+c*b] = top[rr+c*b]
			}
			l0[c+c*b] = 1
			for rr := c + 1; rr < b; rr++ {
				l0[rr+c*b] = top[rr+c*b]
			}
		}
		// T = -W L0^{-T}.
		copy(tmat, w)
		p.Trsm(blas.Right, blas.Lower, true, blas.Unit, b, b, -1, l0, b, tmat, b)
		// Replace the top rows of Y with L0 (unit lower trapezoid top).
		for c := 0; c < b; c++ {
			copy(q[c*rloc:c*rloc+b], l0[c*b:(c+1)*b])
		}
	}
	g.Col.Bcast(topRow, w)
	g.Col.Bcast(topRow, tmat)
	// Below-top rows: Y = Q W^{-1}.
	start := 0
	if isTop {
		start = b
	}
	if rloc-start > 0 {
		sub := make([]float64, (rloc-start)*b)
		for c := 0; c < b; c++ {
			copy(sub[c*(rloc-start):(c+1)*(rloc-start)], q[c*rloc+start:c*rloc+rloc])
		}
		p.Trsm(blas.Right, blas.Upper, false, blas.NonUnit, rloc-start, b, 1, w, b, sub, rloc-start)
		for c := 0; c < b; c++ {
			copy(q[c*rloc+start:c*rloc+rloc], sub[c*(rloc-start):(c+1)*(rloc-start)])
		}
	}
	return q, tmat, r
}

// cholQR performs one CholeskyQR pass: G = P^T P (syrk + column allreduce),
// R = chol(G)^T, P = P R^{-1}. Returns R (b x b upper, column-major).
func cholQR(p *critter.Profiler, g *grid.Grid2D, q []float64, rloc, b int) []float64 {
	gram := make([]float64, b*b)
	if rloc > 0 {
		p.Syrk(blas.Lower, true, b, rloc, 1, q, rloc, 0, gram, b)
	}
	gsum := make([]float64, b*b)
	g.Col.Allreduce(gram, gsum, 0)
	if err := p.Potrf(b, gsum, b); err != nil {
		_ = err
	}
	// R = L^T: build upper-triangular R from the lower factor.
	r := make([]float64, b*b)
	for c := 0; c < b; c++ {
		for rr := c; rr < b; rr++ {
			r[c+rr*b] = gsum[rr+c*b]
		}
	}
	if rloc > 0 {
		p.Trsm(blas.Right, blas.Lower, true, blas.NonUnit, rloc, b, 1, gsum, b, q, rloc)
	}
	return r
}

// cholQR2 runs two CholeskyQR passes and returns R = R2*R1.
func cholQR2(p *critter.Profiler, g *grid.Grid2D, q []float64, rloc, b int) []float64 {
	r1 := cholQR(p, g, q, rloc, b)
	r2 := cholQR(p, g, q, rloc, b)
	p.Trmm(blas.Left, blas.Upper, false, blas.NonUnit, b, b, 1, r2, b, r1, b)
	return r1
}

// tsqr reduces the panel's R factor over the process column with a binary
// exchange tree: local geqrf, then log2(pr) rounds of sendrecv + stacked
// geqrf. Every column rank ends with the final R (b x b upper). The local
// panel q is left unmodified (only a copy is factored).
func tsqr(p *critter.Profiler, g *grid.Grid2D, q []float64, rloc, b, panel int) []float64 {
	r := make([]float64, b*b)
	if rloc > 0 {
		work := append([]float64(nil), q...)
		tau := make([]float64, b)
		p.Geqrf(rloc, b, b, work, rloc, tau)
		for c := 0; c < b; c++ {
			for rr := 0; rr <= c && rr < rloc; rr++ {
				r[rr+c*b] = work[rr+c*rloc]
			}
		}
	}
	me := g.Col.Rank()
	stacked := make([]float64, 2*b*b)
	peerR := make([]float64, b*b)
	for lvl := 1; lvl < g.PR; lvl <<= 1 {
		peer := me ^ lvl
		tag := panel*64 + lvl
		g.Col.Sendrecv(peer, tag, r, peer, tag, peerR)
		lo, hi := r, peerR
		if peer < me {
			lo, hi = peerR, r
		}
		for c := 0; c < b; c++ {
			copy(stacked[c*2*b:c*2*b+b], lo[c*b:(c+1)*b])
			copy(stacked[c*2*b+b:(c+1)*2*b], hi[c*b:(c+1)*b])
		}
		tau := make([]float64, b)
		p.Geqrf(2*b, b, b, stacked, 2*b, tau)
		for c := 0; c < b; c++ {
			for rr := 0; rr < b; rr++ {
				if rr <= c {
					r[rr+c*b] = stacked[rr+c*2*b]
				} else {
					r[rr+c*b] = 0
				}
			}
		}
	}
	return r
}
