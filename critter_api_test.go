package critter_test

// Tests of the public facade: the API a downstream user sees.

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"critter"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	machine := critter.DefaultMachine()
	machine.NoiseSigma = 0.05
	run := func(eps float64) critter.Report {
		world := critter.NewWorld(4, machine, 3)
		var rep critter.Report
		if err := world.Run(func(c *critter.RawComm) {
			prof, comm := critter.NewProfiler(c, critter.Options{
				Policy: critter.Online, Eps: eps,
			})
			buf := make([]float64, 64)
			for i := 0; i < 100; i++ {
				prof.Kernel("work", 64, 0, 0, 0, 1e4, func() {})
				comm.Allreduce(buf, make([]float64, 64), 0)
			}
			r := prof.Report()
			if c.Rank() == 0 {
				rep = r
			}
		}); err != nil {
			t.Fatal(err)
		}
		return rep
	}
	full := run(0)
	approx := run(0.125)
	if approx.Skipped == 0 {
		t.Fatal("no kernels skipped through the facade")
	}
	if approx.Wall >= full.Wall {
		t.Errorf("selective wall %g not below full %g", approx.Wall, full.Wall)
	}
	if err := math.Abs(approx.Predicted-full.Wall) / full.Wall; err > 0.15 {
		t.Errorf("facade prediction error %g too large", err)
	}
}

func TestFacadeStudyConstructors(t *testing.T) {
	s := critter.QuickScale()
	for _, st := range []critter.Study{
		critter.CapitalCholesky(s),
		critter.SlateCholesky(s),
		critter.CandmcQR(s),
		critter.SlateQR(s),
	} {
		if st.NumConfigs == 0 || st.Run == nil || st.Describe == nil {
			t.Errorf("%s: incomplete study", st.Name)
		}
	}
	if len(critter.DefaultEpsList()) != 11 {
		t.Error("DefaultEpsList should have 11 points")
	}
}

func TestFacadeExperiment(t *testing.T) {
	res, err := critter.Experiment{
		Study:    critter.SlateCholesky(critter.QuickScale()),
		EpsList:  []float64{0.25},
		Machine:  critter.DefaultMachine(),
		Seed:     1,
		Policies: []critter.Policy{critter.Conditional},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sweeps) != 1 || len(res.Sweeps[0]) != 1 {
		t.Fatalf("unexpected sweep shape")
	}
	sw := res.Sweeps[0][0]
	if len(sw.Configs) != 20 {
		t.Errorf("slate cholesky has %d configs, want 20", len(sw.Configs))
	}
}

func TestFacadeExperimentSuite(t *testing.T) {
	mk := func(study critter.Study) critter.Experiment {
		return critter.Experiment{
			Study:    study,
			EpsList:  []float64{0.25},
			Machine:  critter.DefaultMachine(),
			Seed:     1,
			Policies: []critter.Policy{critter.Conditional},
		}
	}
	var last critter.Progress
	results, err := critter.ExperimentSuite{
		Experiments: []critter.Experiment{
			mk(critter.CapitalCholesky(critter.QuickScale())),
			mk(critter.SlateCholesky(critter.QuickScale())),
		},
		Workers:  2,
		Progress: func(ev critter.Progress) { last = ev },
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0] == nil || results[1] == nil {
		t.Fatalf("suite results incomplete: %v", results)
	}
	if results[0].Study != "capital-cholesky" || results[1].Study != "slate-cholesky" {
		t.Errorf("suite result order broken: %s, %s", results[0].Study, results[1].Study)
	}
	if last.Done != 2 || last.Total != 2 {
		t.Errorf("final progress %d/%d, want 2/2", last.Done, last.Total)
	}
}

func TestFacadeTunerStrategies(t *testing.T) {
	base := critter.Tuner{
		Study:    critter.CandmcQR(critter.QuickScale()),
		EpsList:  []float64{0.25},
		Machine:  critter.DefaultMachine(),
		Seed:     1,
		Policies: []critter.Policy{critter.Conditional},
	}
	// Exhaustive (the default) must match the legacy Experiment wrapper.
	exhaustive, err := base.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := critter.Experiment{
		Study:    base.Study,
		EpsList:  base.EpsList,
		Machine:  base.Machine,
		Seed:     base.Seed,
		Policies: base.Policies,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(exhaustive, legacy) {
		t.Error("Tuner default strategy differs from Experiment")
	}
	// A budgeted sample evaluates exactly N configurations of the space.
	sampled := base
	sampled.Strategy = critter.RandomSample{N: 4, Seed: 1}
	res, err := sampled.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Sweeps[0][0].Configs); got != 4 {
		t.Errorf("random:4 evaluated %d configs", got)
	}
	// The space is exported: decode the selected configuration.
	sp := base.Study.Space
	if sp.Size() != 15 || len(sp.Decode(res.Sweeps[0][0].Selected)) != len(sp.Dims) {
		t.Errorf("study space not usable through the facade: size %d", sp.Size())
	}
}

// TestFacadeSurrogateStrategy exercises the model-guided search surface
// through the public API: the Surrogate strategy value, its ParseStrategy
// grammar, the ProfileAware plan interface, and deterministic re-runs.
func TestFacadeSurrogateStrategy(t *testing.T) {
	base := critter.Tuner{
		Study:    critter.CandmcQR(critter.QuickScale()),
		EpsList:  []float64{0.25},
		Machine:  critter.DefaultMachine(),
		Seed:     1,
		Policies: []critter.Policy{critter.Online},
		Strategy: critter.Surrogate{N: 5, Seed: 1},
	}
	res, err := base.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sw := res.Sweeps[0][0]
	if got := len(sw.Configs); got != 5 {
		t.Errorf("surrogate:5 evaluated %d configs", got)
	}
	if res.Strategy != "surrogate:5" {
		t.Errorf("strategy recorded as %q", res.Strategy)
	}
	// A surrogate plan implements the ProfileAware feedback interface.
	plan := base.Strategy.Plan(base.Study.Space, 0.25)
	if _, ok := plan.(critter.ProfileAware); !ok {
		t.Error("surrogate plan does not implement ProfileAware")
	}
	// The grammar round-trips through the facade parser, and the usage
	// string mentions it.
	parsed, err := critter.ParseStrategy("surrogate:5", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed, base.Strategy) {
		t.Errorf("ParseStrategy(surrogate:5) = %#v, want %#v", parsed, base.Strategy)
	}
	if !strings.Contains(critter.StrategyNames, "surrogate:") {
		t.Errorf("StrategyNames %q does not mention surrogate", critter.StrategyNames)
	}
	rerun, err := base.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, rerun) {
		t.Error("surrogate re-run differs through the facade")
	}
}

func TestFacadeTunerStream(t *testing.T) {
	tn := critter.Tuner{
		Study:    critter.CapitalCholesky(critter.QuickScale()),
		EpsList:  []float64{0.5, 0.25},
		Machine:  critter.DefaultMachine(),
		Seed:     2,
		Policies: []critter.Policy{critter.Conditional},
		Workers:  2,
	}
	n := 0
	for sw, err := range tn.Stream(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		if len(sw.Configs) == 0 {
			t.Errorf("streamed sweep eps %g is empty", sw.Eps)
		}
		n++
	}
	if n != 2 {
		t.Errorf("streamed %d sweeps, want 2", n)
	}
}

// TestFacadeEstimatorAndProfiles exercises the pluggable-estimator surface
// end to end through the public API: a custom estimator threads into the
// Tuner, sweep results export profiles, and a warm start from an exported
// profile reduces executed kernels.
func TestFacadeEstimatorAndProfiles(t *testing.T) {
	base := critter.Tuner{
		Study:       critter.CandmcQR(critter.QuickScale()),
		EpsList:     []float64{0.125},
		Machine:     critter.DefaultMachine(),
		Seed:        5,
		Policies:    []critter.Policy{critter.Online},
		Extrapolate: true,
	}
	cold, err := base.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	prof := cold.Sweeps[0][0].Profile
	if prof == nil || len(prof.Kernels) == 0 {
		t.Fatal("no profile exported through the facade")
	}
	// Round trip the artifact the way a user persisting it would.
	data, err := prof.Encode()
	if err != nil {
		t.Fatal(err)
	}
	prior, err := critter.DecodeProfile(data)
	if err != nil {
		t.Fatal(err)
	}
	warm := base
	warm.Strategy = critter.WarmStart(critter.Exhaustive{}, prior)
	res, err := warm.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Sweeps[0][0].Executed >= cold.Sweeps[0][0].Executed {
		t.Errorf("warm start executed %d kernels, cold %d", res.Sweeps[0][0].Executed, cold.Sweeps[0][0].Executed)
	}
	if critter.MergedProfile(res) == nil {
		t.Error("MergedProfile empty through the facade")
	}
	// The default estimator is constructible explicitly.
	expl := base
	expl.NewEstimator = func() critter.Estimator { return critter.NewCIMeanEstimator(true) }
	res2, err := expl.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, res2) {
		t.Error("explicit NewCIMeanEstimator differs from the default estimator")
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[critter.Policy]string{
		critter.Conditional: "conditional",
		critter.Local:       "local",
		critter.Online:      "online",
		critter.APriori:     "apriori",
		critter.Eager:       "eager",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("policy %d name %q, want %q", p, p.String(), want)
		}
	}
}

// TestFacadeWorkloadRegistry: a downstream user can register a custom
// workload through the facade alone and have it resolve everywhere names
// do — ParseStudy included — without touching internal packages.
func TestFacadeWorkloadRegistry(t *testing.T) {
	// The shipped catalog is visible and resolvable.
	names := critter.WorkloadNames()
	byName := map[string]bool{}
	for _, n := range names {
		byName[n] = true
	}
	for _, want := range []string{"capital", "slate-chol", "candmc", "slate-qr", "cholesky3d", "qr2d"} {
		if !byName[want] {
			t.Errorf("default registry is missing %q (have %v)", want, names)
		}
	}
	if len(critter.Workloads()) != len(names) {
		t.Errorf("Workloads and WorkloadNames disagree")
	}

	// Register a custom workload: a shrunk CANDMC QR under a new name.
	custom := critter.WorkloadDef{
		WorkloadName: "custom-qr-facade-test",
		Description:  "facade-registered CANDMC QR variant",
		BuildFunc: func(s critter.Scale) critter.Study {
			st := critter.CandmcQR(s)
			st.Name = "custom-qr"
			return st
		},
		DefaultPolicies: []critter.Policy{critter.Online},
		ScalePresets: []critter.ScalePreset{
			{Name: "tiny", Scale: critter.QuickScale()},
		},
	}
	if err := critter.RegisterWorkload(custom); err != nil {
		t.Fatal(err)
	}
	if err := critter.RegisterWorkload(custom); err == nil {
		t.Error("duplicate facade registration succeeded")
	}

	wl, ok := critter.LookupWorkload("custom-qr-facade-test")
	if !ok {
		t.Fatal("registered workload not found")
	}
	scale, err := critter.WorkloadScale(wl, "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := critter.WorkloadScale(wl, "default"); err == nil {
		t.Error("undeclared preset resolved")
	}
	st := wl.Build(scale)
	if st.Name != "custom-qr" || st.Size() <= 0 {
		t.Errorf("built study %+v", st)
	}

	// The legacy name-resolution surface sees it too.
	viaParse, err := critter.ParseStudy("custom-qr-facade-test", scale)
	if err != nil {
		t.Fatal(err)
	}
	if viaParse.Name != "custom-qr" {
		t.Errorf("ParseStudy resolved %q", viaParse.Name)
	}

	// And the scale presets feed the global scale namespace.
	if _, err := critter.ParseScale("tiny"); err != nil {
		t.Errorf("ParseScale(tiny) after registration: %v", err)
	}
	if _, err := critter.ParseScale("bogus-scale"); err == nil {
		t.Error("ParseScale(bogus-scale) succeeded")
	}
}

func TestFacadeObservability(t *testing.T) {
	// Metrics: registry, counter, snapshot round-trip through the facade.
	reg := critter.NewMetricsRegistry()
	reg.Counter("facade_test_total", "facade smoke counter").Add(3)
	var found bool
	for _, fam := range reg.Snapshot() {
		if fam.Name == "facade_test_total" && len(fam.Metrics) == 1 && fam.Metrics[0].Value == 3 {
			found = true
		}
	}
	if !found {
		t.Error("facade registry snapshot is missing the counter")
	}

	// Tracing: a traced tuner run through the facade produces sweep spans
	// in both the ring and the JSONL stream, teed from one Tracer.
	ring := critter.NewTraceRing(1 << 16)
	var buf bytes.Buffer
	jsonl := critter.NewTraceJSONL(&buf)
	var tracer critter.Tracer = critter.TeeTracers(ring, jsonl)

	machine := critter.DefaultMachine()
	machine.NoiseSigma = 0.05
	_, err := critter.Tuner{
		Study:   critter.CandmcQR(critter.QuickScale()),
		EpsList: []float64{0.5},
		Machine: machine,
		Seed:    7,
		Tracer:  tracer,
	}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	events := ring.Events()
	if len(events) == 0 || ring.Dropped() != 0 {
		t.Fatalf("ring holds %d events, dropped %d", len(events), ring.Dropped())
	}
	var ev critter.TraceEvent = events[0]
	if ev.WallNanos == 0 {
		t.Error("facade ring tracer did not stamp wall time")
	}
	if jsonl.Err() != nil || jsonl.Count() != uint64(len(events)) {
		t.Errorf("JSONL tee saw %d events (err %v), ring saw %d", jsonl.Count(), jsonl.Err(), len(events))
	}
	header, _, ok := strings.Cut(buf.String(), "\n")
	if !ok || !strings.Contains(header, `"traceSchemaVersion":1`) {
		t.Errorf("JSONL header %q does not carry schema version %d", header, critter.TraceSchemaVersion)
	}
}
