package critter_test

// Tests of the public facade: the API a downstream user sees.

import (
	"math"
	"testing"

	"critter"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	machine := critter.DefaultMachine()
	machine.NoiseSigma = 0.05
	run := func(eps float64) critter.Report {
		world := critter.NewWorld(4, machine, 3)
		var rep critter.Report
		if err := world.Run(func(c *critter.RawComm) {
			prof, comm := critter.NewProfiler(c, critter.Options{
				Policy: critter.Online, Eps: eps,
			})
			buf := make([]float64, 64)
			for i := 0; i < 100; i++ {
				prof.Kernel("work", 64, 0, 0, 0, 1e4, func() {})
				comm.Allreduce(buf, make([]float64, 64), 0)
			}
			r := prof.Report()
			if c.Rank() == 0 {
				rep = r
			}
		}); err != nil {
			t.Fatal(err)
		}
		return rep
	}
	full := run(0)
	approx := run(0.125)
	if approx.Skipped == 0 {
		t.Fatal("no kernels skipped through the facade")
	}
	if approx.Wall >= full.Wall {
		t.Errorf("selective wall %g not below full %g", approx.Wall, full.Wall)
	}
	if err := math.Abs(approx.Predicted-full.Wall) / full.Wall; err > 0.15 {
		t.Errorf("facade prediction error %g too large", err)
	}
}

func TestFacadeStudyConstructors(t *testing.T) {
	s := critter.QuickScale()
	for _, st := range []critter.Study{
		critter.CapitalCholesky(s),
		critter.SlateCholesky(s),
		critter.CandmcQR(s),
		critter.SlateQR(s),
	} {
		if st.NumConfigs == 0 || st.Run == nil || st.Describe == nil {
			t.Errorf("%s: incomplete study", st.Name)
		}
	}
	if len(critter.DefaultEpsList()) != 11 {
		t.Error("DefaultEpsList should have 11 points")
	}
}

func TestFacadeExperiment(t *testing.T) {
	res, err := critter.Experiment{
		Study:    critter.SlateCholesky(critter.QuickScale()),
		EpsList:  []float64{0.25},
		Machine:  critter.DefaultMachine(),
		Seed:     1,
		Policies: []critter.Policy{critter.Conditional},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sweeps) != 1 || len(res.Sweeps[0]) != 1 {
		t.Fatalf("unexpected sweep shape")
	}
	sw := res.Sweeps[0][0]
	if len(sw.Configs) != 20 {
		t.Errorf("slate cholesky has %d configs, want 20", len(sw.Configs))
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[critter.Policy]string{
		critter.Conditional: "conditional",
		critter.Local:       "local",
		critter.Online:      "online",
		critter.APriori:     "apriori",
		critter.Eager:       "eager",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("policy %d name %q, want %q", p, p.String(), want)
		}
	}
}
