// Package critter is a Go reproduction of "Accelerating Distributed-Memory
// Autotuning via Statistical Analysis of Execution Paths" (Hutter &
// Solomonik, IPDPS 2021): the Critter profiler for selective kernel
// execution, a deterministic virtual-time message-passing runtime it runs
// on, dense BLAS/LAPACK kernels, the paper's four case-study factorization
// libraries (CAPITAL Cholesky, SLATE Cholesky and QR, CANDMC QR), and the
// autotuning evaluation harness that regenerates Figures 3-5.
//
// The autotuning surface is the Tuner, which composes three abstractions:
// a Space (the study's configuration space as named dimensions), a search
// Strategy (Exhaustive — the paper's protocol — RandomSample for budgeted
// tuning, SuccessiveHalving, which prunes configurations across tolerance
// rungs using Critter's predicted times, or Surrogate, which spends an
// evaluation budget by expected improvement under a deterministic
// regression model of the space and adapts its exploration margin from the
// live merged profile via the ProfileAware plan interface), and a
// context-aware concurrent runner. Every (study, policy, eps) sweep of the tuning grid
// runs in its own deterministic world seeded identically, so Tuner.Run
// dispatches sweeps to a bounded pool of worker goroutines (Workers;
// default GOMAXPROCS) and produces results bit-identical to a sequential
// run at any worker count; cancelling the context stops a running grid at
// the next configuration boundary. Tuner.Stream yields sweeps in
// completion order as an iterator for serving and streaming consumers, and
// RunTuners shares one pool across several studies. Experiment and
// ExperimentSuite are thin compatibility wrappers over the Tuner,
// preserved from the exhaustive-only API.
//
// The prediction layer behind the skip decisions is the pluggable
// Estimator (NewCIMeanEstimator is the paper's machinery and the default),
// and what a run learns is a persistent artifact: every sweep exports a
// versioned, JSON-serializable Profile that warm-starts later runs via
// Options.Prior, Tuner.Prior, or the WarmStart strategy decorator —
// including across problem scales, where the fitted family extrapolators
// keep predicting after the per-signature models stop matching.
//
// Tuning problems themselves are first-class Workloads in a process-global
// registry: the shipped catalog (the four case studies plus the example
// workloads) and anything added with RegisterWorkload resolve by name
// through ParseStudy, the CLIs, and the critter-serve job service, which
// queues tuning runs behind an HTTP JSON API and warm-starts each job from
// what earlier jobs on the same workload learned. The service is built to
// be run continuously: finished jobs, result envelopes, and merged
// profiles persist across restarts in an embedded crash-safe store
// (internal/store, enabled with -store), identical submissions
// deduplicate onto one execution (and memoize afterwards), remote workers
// join over the same API (-mode=worker) with lease-based fault tolerance,
// and a bounded queue sheds overload with 429 + Retry-After. The
// determinism guarantees make all of that safe: because a spec's result
// is byte-identical wherever and whenever it runs, caching, replaying,
// and relocating jobs cannot change what a client observes.
//
// This file is the public facade: it re-exports the stable API surface from
// the internal packages. Typical use:
//
//	world := critter.NewWorld(64, critter.DefaultMachine(), seed)
//	err := world.Run(func(c *critter.RawComm) {
//	    prof, comm := critter.NewProfiler(c, critter.Options{
//	        Policy: critter.Online, Eps: 0.125,
//	    })
//	    // Build grids with comm.Split, run kernels via prof.Gemm etc.;
//	    // communication through comm.Bcast/Send/... is selectively
//	    // executed once its statistics make it predictable.
//	    report := prof.Report()
//	    _ = report
//	})
package critter

import (
	"context"
	"io"

	"critter/internal/autotune"
	"critter/internal/critter"
	"critter/internal/mpi"
	"critter/internal/obs"
	"critter/internal/sim"
	"critter/internal/stats"
	"critter/internal/workload"
)

// Core profiler types (the paper's contribution).
type (
	// Profiler is one rank's Critter instance: kernel models, pathset,
	// and selective-execution decisions.
	Profiler = critter.Profiler
	// Comm is a profiled communicator; all traffic through it is
	// intercepted by the path propagation mechanism.
	Comm = critter.Comm
	// RawComm is the underlying unprofiled communicator handle.
	RawComm = mpi.Comm
	// World is the simulated machine: ranks, mailboxes, virtual clocks.
	World = mpi.World
	// Options configures a Profiler (policy, tolerance, estimator, prior).
	Options = critter.Options
	// Policy selects the selective-execution method.
	Policy = critter.Policy
	// Key is a kernel signature.
	Key = critter.Key
	// Report summarizes one configuration run.
	Report = critter.Report
	// Estimator is the pluggable prediction layer: it models kernel
	// durations (Observe/Estimate), decides predictability, and may
	// extrapolate across input sizes. The built-in CI-mean estimator
	// (NewCIMeanEstimator) is the paper's statistical machinery.
	Estimator = critter.Estimator
	// ProfileCarrier is the optional Estimator interface for exporting
	// learned state to a Profile and warm-starting from a prior.
	ProfileCarrier = critter.ProfileCarrier
	// WelfordCarrier is the optional Estimator interface the eager
	// policy's cross-rank statistics aggregation requires.
	WelfordCarrier = critter.WelfordCarrier
	// Profile is the versioned, JSON-serializable artifact of what a
	// profiling run learned: kernel models, fitted family extrapolators,
	// and critical-path frequencies. Export with Profiler.ExportProfile or
	// from SweepResult.Profile; feed back via Options.Prior, Tuner.Prior,
	// or the WarmStart strategy decorator.
	Profile = critter.Profile
	// KernelModel is one kernel signature's serialized duration model.
	KernelModel = critter.KernelModel
	// Family is one routine family's serialized extrapolation model.
	Family = critter.Family
	// FamilyPoint is one (flops, mean) sample of a family model.
	FamilyPoint = critter.FamilyPoint
	// ProfileSummary condenses a profile for result envelopes.
	ProfileSummary = autotune.ProfileSummary
	// Machine is the alpha-beta-gamma cost model.
	Machine = sim.Machine
	// SchedulerKind selects how a World's ranks are driven (Tuner.Scheduler):
	// SchedAuto picks per world, SchedGoroutine is one goroutine per rank,
	// SchedEvent is the discrete-event scheduler that runs small worlds on a
	// single goroutine. Results are byte-identical under every choice.
	SchedulerKind = mpi.SchedulerKind
	// Welford is the single-pass statistics accumulator.
	Welford = stats.Welford
	// Study is one library's tuning problem: a configuration Space plus an
	// SPMD runner.
	Study = autotune.Study
	// Space is a configuration space declared as named dimensions, with
	// per-dimension decoding for search strategies.
	Space = autotune.Space
	// Dim is one named axis of a Space.
	Dim = autotune.Dim
	// Tuner sweeps a study over policies and tolerances under a search
	// Strategy, with context cancellation (Run) and streaming results
	// (Stream) on a bounded worker pool.
	Tuner = autotune.Tuner
	// Strategy plans which configurations a sweep evaluates.
	Strategy = autotune.Strategy
	// Plan is one sweep's stateful iteration of a Strategy.
	Plan = autotune.Plan
	// Round is one batch of configurations a Plan asks the runner to
	// evaluate, at a given tolerance.
	Round = autotune.Round
	// Exhaustive evaluates every configuration in index order — the
	// paper's protocol, and the default Strategy.
	Exhaustive = autotune.Exhaustive
	// RandomSample evaluates N deterministically sampled configurations,
	// for budgeted tuning of large spaces.
	RandomSample = autotune.RandomSample
	// SuccessiveHalving prunes configurations across tolerance rungs using
	// Critter's predicted execution times.
	SuccessiveHalving = autotune.SuccessiveHalving
	// Surrogate evaluates up to N configurations chosen by a deterministic
	// ridge-regression surrogate with expected-improvement acquisition,
	// fit on Critter's predicted times as they arrive.
	Surrogate = autotune.Surrogate
	// ProfileAware is the optional Plan interface the sweep executor feeds
	// the live merged profile after every completed round; model-guided
	// plans use it to adapt mid-sweep.
	ProfileAware = autotune.ProfileAware
	// Envelope is the self-describing JSON serialization of one tuning
	// run (schema version, seed, scale, noise, strategy, result grid).
	Envelope = autotune.Envelope
	// Experiment sweeps a study exhaustively over policies and tolerances;
	// a compatibility wrapper over Tuner.
	Experiment = autotune.Experiment
	// ExperimentSuite runs several experiments through one shared worker
	// pool with suite-wide progress reporting; a wrapper over RunTuners.
	ExperimentSuite = autotune.ExperimentSuite
	// Result holds every sweep of an experiment, indexed [policy][eps].
	Result = autotune.Result
	// SweepResult aggregates one (policy, eps) pass over a study's space.
	SweepResult = autotune.SweepResult
	// ConfigResult captures one configuration's reference and selective runs.
	ConfigResult = autotune.ConfigResult
	// Progress describes one completed sweep of a running experiment or suite.
	Progress = autotune.Progress
	// Scale sizes the built-in case studies.
	Scale = autotune.Scale
	// Workload is a first-class, registrable tuning problem: name,
	// description, configuration space, default policies, scale presets,
	// and a Study builder. Resolve by name through LookupWorkload or
	// ParseStudy; add your own with RegisterWorkload.
	Workload = workload.Workload
	// WorkloadDef is the declarative Workload implementation: fill the
	// fields, pass it to RegisterWorkload.
	WorkloadDef = workload.Def
	// ScalePreset is one named problem size a workload declares.
	ScalePreset = workload.ScalePreset
	// WorkloadRegistry maps workload names to Workloads. The process
	// global default registry (Workloads, LookupWorkload, RegisterWorkload)
	// carries the paper's four case studies plus the two example
	// workloads; NewWorkloadRegistry builds isolated ones for services.
	WorkloadRegistry = workload.Registry
)

// Selective-execution policies (Section IV-B of the paper).
const (
	Conditional = critter.Conditional
	Local       = critter.Local
	Online      = critter.Online
	APriori     = critter.APriori
	Eager       = critter.Eager
)

// World scheduler kinds (see SchedulerKind).
const (
	SchedAuto      = mpi.SchedAuto
	SchedGoroutine = mpi.SchedGoroutine
	SchedEvent     = mpi.SchedEvent
)

// ParseScheduler resolves a scheduler name as used in the CLIs' -sched
// flags: "auto", "goroutine", or "event".
func ParseScheduler(name string) (SchedulerKind, error) { return mpi.ParseScheduler(name) }

// SchedulerNames lists the accepted -sched values for usage strings.
func SchedulerNames() string { return mpi.SchedulerNames() }

// NewWorld creates a simulated machine of size ranks.
func NewWorld(size int, m Machine, seed uint64) *World { return mpi.NewWorld(size, m, seed) }

// DefaultMachine returns the calibrated machine model.
func DefaultMachine() Machine { return sim.DefaultMachine() }

// NewProfiler creates a rank's profiler and wraps its world communicator;
// collective over the world.
func NewProfiler(c *RawComm, o Options) (*Profiler, *Comm) { return critter.New(c, o) }

// NewCIMeanEstimator returns the built-in confidence-interval estimator
// (the paper's machinery); extrapolate enables family-model line fitting.
// This is what a nil Options.Estimator resolves to.
func NewCIMeanEstimator(extrapolate bool) Estimator {
	return critter.NewCIMeanEstimator(extrapolate)
}

// WarmStart decorates a search strategy with a warm-start prior: every
// sweep the decorated strategy plans seeds its selective profiler from the
// prior profile. A nil inner means Exhaustive; a nil prior returns inner
// unchanged.
func WarmStart(inner Strategy, prior *Profile) Strategy {
	return autotune.WarmStart(inner, prior)
}

// MergeProfiles merges b into a copy of a (either may be nil): kernel
// models pool their samples, family points union, path frequencies take
// the max.
func MergeProfiles(a, b *Profile) *Profile { return critter.MergeProfiles(a, b) }

// DecodeProfile parses and validates a serialized kernel profile.
func DecodeProfile(data []byte) (*Profile, error) { return critter.DecodeProfile(data) }

// MergedProfile merges every sweep's exported profile of a result grid
// into one artifact (nil when nothing was exported).
func MergedProfile(res *Result) *Profile { return autotune.MergedProfile(res) }

// ProfileSchemaVersion identifies the JSON layout of Profile.
const ProfileSchemaVersion = critter.ProfileSchemaVersion

// DefaultScale sizes the built-in case studies for a laptop.
func DefaultScale() Scale { return autotune.DefaultScale() }

// QuickScale sizes the built-in case studies for tests.
func QuickScale() Scale { return autotune.QuickScale() }

// ParsePolicy resolves a policy name as used in critter-tune flags and
// serialized results.
func ParsePolicy(name string) (Policy, error) { return critter.ParsePolicy(name) }

// ParseScale resolves a scale-preset name against the default workload
// registry's declared presets (default, quick for the built-ins); the
// error enumerates the valid names.
func ParseScale(name string) (Scale, error) { return workload.ParseScale(name) }

// ParseStudy resolves a workload name in the default registry (capital,
// slate-chol, candmc, slate-qr, cholesky3d, qr2d, plus anything registered
// with RegisterWorkload) and builds its study at the given scale.
func ParseStudy(name string, s Scale) (Study, error) { return workload.ParseStudy(nil, name, s) }

// RegisterWorkload adds a custom workload to the default registry, making
// it resolvable by name everywhere studies are: ParseStudy, the CLIs'
// -study flags, and the critter-serve job API. Empty and duplicate names
// are errors.
func RegisterWorkload(w Workload) error { return workload.Register(w) }

// LookupWorkload resolves a workload by name in the default registry.
func LookupWorkload(name string) (Workload, bool) { return workload.Lookup(name) }

// Workloads returns the default registry's workloads in registration order
// (the four case studies first, in the paper's presentation order, then
// the example workloads, then anything registered since).
func Workloads() []Workload { return workload.List() }

// WorkloadNames returns the default registry's workload names in
// registration order.
func WorkloadNames() []string { return workload.Names() }

// NewWorkloadRegistry returns an empty, isolated workload registry, for
// services that must not see (or leak into) the process-global namespace.
func NewWorkloadRegistry() *WorkloadRegistry { return workload.NewRegistry() }

// WorkloadScale resolves one of w's declared scale presets by name; the
// error enumerates w's preset names.
func WorkloadScale(w Workload, name string) (Scale, error) { return workload.ScaleOf(w, name) }

// DecodeEnvelope parses a serialized tuning-run envelope (critter-tune
// -json output, critter-serve job results), accepting schema versions 2
// through ResultSchemaVersion and rejecting unknown future versions.
func DecodeEnvelope(data []byte) (*Envelope, error) { return autotune.DecodeEnvelope(data) }

// StrategyNames documents the strategy flag grammar ParseStrategy accepts,
// for usage strings.
const StrategyNames = autotune.StrategyNames

// ParseStrategy resolves a search-strategy flag spec ("exhaustive",
// "random:N", "halving[:ETA]", "surrogate:N[:BATCH]"); seed seeds
// RandomSample's and Surrogate's sampling streams. StrategyNames documents
// the full grammar.
func ParseStrategy(spec string, seed uint64) (Strategy, error) {
	return autotune.ParseStrategy(spec, seed)
}

// RunTuners executes several tuners through one shared bounded worker pool
// with pool-wide progress reporting; both returned slices align with
// tuners.
func RunTuners(ctx context.Context, tuners []Tuner, workers int, progress func(Progress)) ([]*Result, []error) {
	return autotune.RunTuners(ctx, tuners, workers, progress)
}

// NewSpace builds a configuration space from its dimensions,
// fastest-varying first.
func NewSpace(dims ...Dim) Space { return autotune.NewSpace(dims...) }

// IntsDim builds a space dimension whose points are integers.
func IntsDim(name string, vals ...int) Dim { return autotune.IntsDim(name, vals...) }

// GridsDim builds a space dimension whose points are 2D processor-grid
// shapes, labeled "PRxPC".
func GridsDim(name string, grids ...[2]int) Dim { return autotune.GridsDim(name, grids...) }

// ResultSchemaVersion identifies the JSON layout of Envelope.
const ResultSchemaVersion = autotune.ResultSchemaVersion

// Built-in case studies (Section V of the paper).
var (
	CapitalCholesky = autotune.CapitalCholesky
	SlateCholesky   = autotune.SlateCholesky
	CandmcQR        = autotune.CandmcQR
	SlateQR         = autotune.SlateQR
)

// DefaultEpsList returns the paper's tolerance sweep, eps = 2^0 .. 2^-10.
func DefaultEpsList() []float64 { return autotune.DefaultEpsList() }

// Observability (internal/obs): metrics and dual-clock run tracing.
type (
	// Tracer receives span events from a tuning run: set Tuner.Tracer to
	// observe job → sweep → config → propagation-round structure. Emit must
	// be safe for concurrent use; implementations stamp wall time themselves
	// so the deterministic layers never read the real clock.
	Tracer = obs.Tracer
	// TraceEvent is one dual-clock trace record: virtual seconds from the
	// simulation, wall nanoseconds from the tracer's injected clock.
	TraceEvent = obs.Event
	// MetricsRegistry is a process- or service-local metric namespace with
	// JSON snapshots and Prometheus text exposition; pass one to the service
	// Config.Metrics to scrape a scheduler.
	MetricsRegistry = obs.Registry
)

// TraceSchemaVersion identifies the JSON layout of TraceEvent streams.
const TraceSchemaVersion = obs.TraceSchemaVersion

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTraceRing returns a bounded in-memory tracer retaining the most
// recent capacity events (default 4096 when capacity <= 0), stamping wall
// time with the real clock.
func NewTraceRing(capacity int) *obs.Ring { return obs.NewRing(capacity, obs.WallClock()) }

// NewTraceJSONL returns a tracer that appends one JSON object per event to
// w (a schema-version header line first), stamping wall time with the real
// clock. Check Err after the run; cmd/critter-trace summarizes the output.
func NewTraceJSONL(w io.Writer) *obs.JSONL { return obs.NewJSONL(w, obs.WallClock()) }

// TeeTracers fans one event stream out to several tracers (e.g. a ring for
// serving plus a JSONL file for archival); nils are skipped.
func TeeTracers(ts ...Tracer) Tracer { return obs.Tee(ts...) }
