// Command critter-tune runs one autotuning study over a grid of
// selective-execution policies and tolerances, printing per-configuration
// reports: full execution time, predicted time, prediction error, and the
// kernel execution/skip counts. The grid runs through a Tuner: -strategy
// selects which configurations each sweep evaluates (exhaustive reproduces
// the paper; random:N, halving[:ETA], and surrogate:N[:BATCH] — the
// model-guided strategy — trade coverage for budget), -timeout
// cancels the remaining work at a deadline, and -workers bounds the
// concurrent sweep pool.
//
// Usage:
//
//	critter-tune -study capital -policy eager -eps 0.125 [-scale quick]
//	critter-tune -study slate-chol -policy online,apriori -eps 1,0.25,0.0625 -workers 4
//	critter-tune -study candmc -policy online -eps 0.125 -json
//	critter-tune -study slate-qr -strategy random:16 -timeout 30s
//	critter-tune -study candmc -eps 0.125 -extrapolate -profile-out prof.json
//	critter-tune -study candmc -eps 0.125 -extrapolate -profile-in prof.json
//
// -profile-out persists everything the run's selective executions learned
// (kernel models, fitted family extrapolators, path frequencies, merged
// across every sweep) as a versioned JSON profile; -profile-in warm-starts
// a run from such a profile, skipping kernels the prior already predicts.
//
// -json emits a self-describing envelope: a schema version plus the seed,
// scale, noise sigma, and strategy used — and, since schema version 3,
// summaries of the imported and per-sweep exported profiles — so result
// files can be compared across runs.
//
// -trace FILE writes the run's span events (job, sweep, config, strategy
// rounds, kernel-propagation rounds) as JSONL, dual-clocked: virtual time
// from the simulation, wall time stamped at write. Tracing is
// observational only — results and envelopes are byte-identical with it
// on or off. Summarize the file with critter-trace.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"critter/internal/autotune"
	"critter/internal/critter"
	"critter/internal/mpi"
	"critter/internal/obs"
	"critter/internal/sim"
	"critter/internal/workload"
)

func main() {
	studyName := flag.String("study", "capital", "workload: "+strings.Join(workload.Names(), ", "))
	policyFlag := flag.String("policy", "online", "comma-separated policies: conditional, local, online, apriori, eager")
	epsFlag := flag.String("eps", "0.125", "comma-separated confidence tolerances (<= 0 disables selective execution)")
	scaleName := flag.String("scale", "default", "problem scale: "+strings.Join(workload.Default().ScaleNames(), ", "))
	seed := flag.Uint64("seed", 42, "noise seed")
	noise := flag.Float64("noise", 0.05, "machine noise sigma")
	workers := flag.Int("workers", 0, "concurrent sweep workers (0 = GOMAXPROCS)")
	strategyFlag := flag.String("strategy", "exhaustive", "search strategy: "+autotune.StrategyNames)
	timeout := flag.Duration("timeout", 0, "overall deadline (0 = none); on expiry remaining sweeps are cancelled")
	jsonOut := flag.Bool("json", false, "emit a self-describing result envelope as JSON instead of tables")
	extrapolate := flag.Bool("extrapolate", false, "enable family-model extrapolation in the selective profilers")
	profileIn := flag.String("profile-in", "", "warm-start every sweep from this kernel profile (JSON, from -profile-out)")
	profileOut := flag.String("profile-out", "", "write the run's merged learned kernel profile to this file")
	traceOut := flag.String("trace", "", "write the run's span events to this file as JSONL (see critter-trace)")
	schedFlag := flag.String("sched", "auto", "world scheduler: "+mpi.SchedulerNames()+" (results are byte-identical under every choice)")
	flag.Parse()

	// The -scale name resolves against the chosen workload's own declared
	// presets, so a preset some other workload registered cannot leak in.
	study, err := workload.ResolveStudy(nil, *studyName, *scaleName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "critter-tune: %v\n", err)
		os.Exit(2)
	}
	policies, err := parsePolicies(*policyFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "critter-tune: %v\n", err)
		os.Exit(2)
	}
	epsList, err := parseEpsList(*epsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "critter-tune: %v\n", err)
		os.Exit(2)
	}
	strategy, err := autotune.ParseStrategy(*strategyFlag, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "critter-tune: %v\n", err)
		os.Exit(2)
	}
	sched, err := mpi.ParseScheduler(*schedFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "critter-tune: %v\n", err)
		os.Exit(2)
	}

	var prior *critter.Profile
	if *profileIn != "" {
		data, err := os.ReadFile(*profileIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "critter-tune: %v\n", err)
			os.Exit(2)
		}
		if prior, err = critter.DecodeProfile(data); err != nil {
			fmt.Fprintf(os.Stderr, "critter-tune: %s: %v\n", *profileIn, err)
			os.Exit(2)
		}
	}

	var tracer *obs.JSONL
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "critter-tune: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		tracer = obs.NewJSONL(f, obs.WallClock())
		tracer.Emit(obs.Event{Kind: obs.KindJob, Phase: obs.PhaseBegin, Name: study.Name})
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	machine := sim.DefaultMachine()
	machine.NoiseSigma = *noise
	tn := autotune.Tuner{
		Study:       study,
		EpsList:     epsList,
		Machine:     machine,
		Seed:        *seed,
		Policies:    policies,
		Strategy:    strategy,
		Prior:       prior,
		Extrapolate: *extrapolate,
		Scheduler:   sched,
		Workers:     *workers,
	}
	if tracer != nil {
		tn.Tracer = tracer
	}
	res, runErr := tn.Run(ctx)
	if tracer != nil {
		ev := obs.Event{Kind: obs.KindJob, Phase: obs.PhaseEnd, Name: study.Name}
		if runErr != nil {
			ev.Error = runErr.Error()
		}
		tracer.Emit(ev)
		if err := tracer.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "critter-tune: trace %s: %v\n", *traceOut, err)
		} else {
			fmt.Fprintf(os.Stderr, "critter-tune: wrote %d trace events to %s\n", tracer.Count(), *traceOut)
		}
	}
	if runErr != nil {
		// Completed sweeps are still in the grid (failed cells are
		// zeroed); emit them before exiting nonzero, so a -timeout run
		// keeps its partial results.
		fmt.Fprintf(os.Stderr, "critter-tune: %v\n", runErr)
	}

	// Emit the run's output first — even on failure, completed sweeps and
	// the envelope must reach stdout before any exit — then persist the
	// profile artifact.
	if *jsonOut {
		env := autotune.Envelope{
			SchemaVersion: autotune.ResultSchemaVersion,
			Study:         study.Name,
			Scale:         *scaleName,
			Seed:          *seed,
			NoiseSigma:    *noise,
			Strategy:      strategy.Name(),
			Profiles:      autotune.ProfileSummaries(res),
			Result:        res,
		}
		if prior != nil {
			sum := autotune.Summarize("", 0, prior)
			env.Prior = &sum
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(env); err != nil {
			fmt.Fprintf(os.Stderr, "critter-tune: %v\n", err)
			os.Exit(1)
		}
	} else {
		for pi, pol := range res.Policies {
			for ei, eps := range res.EpsList {
				if pi > 0 || ei > 0 {
					fmt.Println()
				}
				sw := res.Sweeps[pi][ei]
				if len(sw.Configs) == 0 && runErr != nil {
					fmt.Printf("study %s  policy %s  eps %g: sweep not run (failed or cancelled)\n",
						study.Name, pol, eps)
					continue
				}
				printSweep(study, pol, eps, sw)
			}
		}
	}
	exit := 0
	if runErr != nil {
		exit = 1
	}
	if *profileOut != "" {
		if err := autotune.WriteProfileFile(*profileOut, autotune.MergedProfile(res)); err != nil {
			fmt.Fprintf(os.Stderr, "critter-tune: %v\n", err)
			exit = 1
		}
	}
	os.Exit(exit)
}

// parsePolicies resolves a comma-separated policy list.
func parsePolicies(s string) ([]critter.Policy, error) {
	var out []critter.Policy
	for _, name := range strings.Split(s, ",") {
		p, err := critter.ParsePolicy(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// parseEpsList resolves a comma-separated tolerance list. Non-finite
// values are rejected at the gate: they would run the full simulation only
// to produce nonsense tables or an unencodable JSON result.
func parseEpsList(s string) ([]float64, error) {
	var out []float64
	for _, field := range strings.Split(s, ",") {
		e, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
		if err != nil || math.IsNaN(e) || math.IsInf(e, 0) {
			return nil, fmt.Errorf("bad eps %q", field)
		}
		out = append(out, e)
	}
	return out, nil
}

// printSweep emits one (policy, eps) sweep's per-configuration table and
// summary lines.
func printSweep(study autotune.Study, pol critter.Policy, eps float64, sw autotune.SweepResult) {
	fmt.Printf("study %s  policy %s  eps %g  ranks %d  configs %d  evaluated %d\n",
		study.Name, pol, eps, study.WorldSize, study.Size(), len(sw.Configs))
	fmt.Printf("%-4s %-24s %12s %12s %10s\n", "cfg", "params", "full (s)", "predicted", "err (%)")
	for _, cr := range sw.Configs {
		fmt.Printf("%-4d %-24s %12.5g %12.5g %10.3f\n",
			cr.Config, study.Label(cr.Config), cr.Full.Wall, cr.Selective.Predicted, 100*cr.ExecErr)
	}
	if sw.TuneWall > 0 {
		fmt.Printf("\ntuning time %.5gs vs full execution %.5gs: speedup %.2fx\n",
			sw.TuneWall, sw.FullWall, sw.FullWall/sw.TuneWall)
	} else {
		fmt.Printf("\ntuning time %.5gs vs full execution %.5gs\n", sw.TuneWall, sw.FullWall)
	}
	if total := sw.Executed + sw.Skipped; total > 0 {
		fmt.Printf("kernels executed %d, skipped %d (%.1f%% skipped)\n",
			sw.Executed, sw.Skipped, 100*float64(sw.Skipped)/float64(total))
	} else {
		fmt.Printf("kernels executed 0, skipped 0\n")
	}
	if eps > 0 {
		fmt.Printf("mean log2 prediction error %.2f (eps = 2^%.0f)\n",
			sw.MeanLogExecErr, math.Log2(eps))
	} else {
		fmt.Printf("mean log2 prediction error %.2f (selective execution disabled)\n",
			sw.MeanLogExecErr)
	}
	fmt.Printf("selected config %d (%s); optimal %d (%s)\n",
		sw.Selected, study.Label(sw.Selected), sw.Optimal, study.Label(sw.Optimal))
}
