// Command critter-tune runs one autotuning study under a single
// selective-execution policy and tolerance, printing the per-configuration
// report: full execution time, predicted time, prediction error, and the
// kernel execution/skip counts.
//
// Usage:
//
//	critter-tune -study capital -policy eager -eps 0.125 [-scale quick]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"critter/internal/autotune"
	"critter/internal/critter"
	"critter/internal/sim"
)

func main() {
	studyName := flag.String("study", "capital", "study: capital, slate-chol, candmc, slate-qr")
	policyName := flag.String("policy", "online", "policy: conditional, local, online, apriori, eager")
	eps := flag.Float64("eps", 0.125, "confidence tolerance (<= 0 disables selective execution)")
	scaleName := flag.String("scale", "default", "problem scale: default or quick")
	seed := flag.Uint64("seed", 42, "noise seed")
	noise := flag.Float64("noise", 0.05, "machine noise sigma")
	flag.Parse()

	scale := autotune.DefaultScale()
	if *scaleName == "quick" {
		scale = autotune.QuickScale()
	}
	var study autotune.Study
	switch *studyName {
	case "capital":
		study = autotune.CapitalCholesky(scale)
	case "slate-chol":
		study = autotune.SlateCholesky(scale)
	case "candmc":
		study = autotune.CandmcQR(scale)
	case "slate-qr":
		study = autotune.SlateQR(scale)
	default:
		fmt.Fprintf(os.Stderr, "critter-tune: unknown study %q\n", *studyName)
		os.Exit(2)
	}
	var policy critter.Policy
	switch *policyName {
	case "conditional":
		policy = critter.Conditional
	case "local":
		policy = critter.Local
	case "online":
		policy = critter.Online
	case "apriori":
		policy = critter.APriori
	case "eager":
		policy = critter.Eager
	default:
		fmt.Fprintf(os.Stderr, "critter-tune: unknown policy %q\n", *policyName)
		os.Exit(2)
	}

	machine := sim.DefaultMachine()
	machine.NoiseSigma = *noise
	res, err := autotune.Experiment{
		Study:    study,
		EpsList:  []float64{*eps},
		Machine:  machine,
		Seed:     *seed,
		Policies: []critter.Policy{policy},
	}.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "critter-tune: %v\n", err)
		os.Exit(1)
	}
	sw := res.Sweeps[0][0]
	fmt.Printf("study %s  policy %s  eps %g  ranks %d  configs %d\n",
		study.Name, policy, *eps, study.WorldSize, study.NumConfigs)
	fmt.Printf("%-4s %-24s %12s %12s %10s\n", "cfg", "params", "full (s)", "predicted", "err (%)")
	for _, cr := range sw.Configs {
		fmt.Printf("%-4d %-24s %12.5g %12.5g %10.3f\n",
			cr.Config, study.Describe(cr.Config), cr.Full.Wall, cr.Selective.Predicted, 100*cr.ExecErr)
	}
	speedup := sw.FullWall / sw.TuneWall
	fmt.Printf("\ntuning time %.5gs vs full execution %.5gs: speedup %.2fx\n",
		sw.TuneWall, sw.FullWall, speedup)
	fmt.Printf("kernels executed %d, skipped %d (%.1f%% skipped)\n",
		sw.Executed, sw.Skipped, 100*float64(sw.Skipped)/float64(sw.Executed+sw.Skipped))
	fmt.Printf("mean log2 prediction error %.2f (eps = 2^%.0f)\n",
		sw.MeanLogExecErr, math.Log2(*eps))
	fmt.Printf("selected config %d (%s); optimal %d (%s)\n",
		sw.Selected, study.Describe(sw.Selected), sw.Optimal, study.Describe(sw.Optimal))
}
