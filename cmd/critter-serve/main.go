// Command critter-serve exposes the autotuning harness as a long-running
// HTTP service: tuning runs become schedulable jobs on a bounded queue,
// progress streams over server-sent events, and every finished job's
// learned kernel profile accumulates in an in-memory store that
// warm-starts later jobs on the same workload — the service form of
// critter-tune's -profile-in/-profile-out loop.
//
// Usage:
//
//	critter-serve [-addr 127.0.0.1:8080] [-runners 1] [-queue 16] [-workers 0]
//
// API (JSON; see the README's Service section for the full table):
//
//	POST   /v1/jobs                 {"workload":"candmc","scale":"quick","eps":[0.125]}
//	GET    /v1/jobs                 all jobs
//	GET    /v1/jobs/{id}            job status
//	DELETE /v1/jobs/{id}            cancel
//	GET    /v1/jobs/{id}/events     progress (SSE)
//	GET    /v1/jobs/{id}/result     result envelope (schemaVersion 3)
//	GET    /v1/workloads            registered workload catalog
//	GET    /v1/profiles/{workload}  accumulated warm-start profile
//
// With -addr ending in :0 the kernel picks a free port; the chosen
// address is printed as "listening on http://..." so scripts (like the CI
// smoke job) can scrape it. Shutdown is graceful: SIGINT/SIGTERM stops
// accepting requests, lets in-flight jobs finish within -grace, then
// cancels whatever is left.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"critter/internal/service"
	"critter/internal/sim"
	_ "critter/internal/workload" // the default registry's built-ins
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	runners := flag.Int("runners", 1, "concurrently executing jobs")
	queue := flag.Int("queue", 16, "bounded pending-job queue size")
	workers := flag.Int("workers", 0, "per-job concurrent sweep workers (0 = GOMAXPROCS)")
	history := flag.Int("history", 256, "finished jobs retained for status/result lookups (oldest evicted beyond this; <0 = unlimited)")
	grace := flag.Duration("grace", 30*time.Second, "graceful-shutdown window for in-flight jobs")
	flag.Parse()

	sched := service.New(service.Config{
		Machine:    sim.DefaultMachine(),
		QueueSize:  *queue,
		Runners:    *runners,
		Workers:    *workers,
		MaxHistory: *history,
	})
	httpSrv := &http.Server{Handler: service.NewServer(sched)}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "critter-serve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("critter-serve: listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	served := make(chan error, 1)
	go func() { served <- httpSrv.Serve(ln) }()

	select {
	case err := <-served:
		// Serve only returns on listener failure here; shutdown goes
		// through the signal path below.
		fmt.Fprintf(os.Stderr, "critter-serve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Println("critter-serve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "critter-serve: http shutdown: %v\n", err)
	}
	if err := sched.Close(shutdownCtx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "critter-serve: scheduler shutdown: %v\n", err)
	}
}
