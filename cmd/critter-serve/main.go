// Command critter-serve exposes the autotuning harness as a long-running
// HTTP service: tuning runs become schedulable jobs on a bounded queue,
// progress streams over server-sent events, identical submissions coalesce
// onto one execution, and every finished job's learned kernel profile
// accumulates in a store that warm-starts later jobs on the same workload
// — the service form of critter-tune's -profile-in/-profile-out loop.
// With -store the history and profiles are durable: finished jobs,
// their result envelopes, and the merged profiles survive restarts.
//
// Usage:
//
//	critter-serve [-addr 127.0.0.1:8080] [-runners 1] [-queue 16]
//	              [-workers 0] [-store DIR]
//	critter-serve -mode=worker -join=http://host:8080 [-name NAME] [-poll 500ms]
//
// The default mode serves the JSON API; -mode=worker instead joins an
// existing coordinator as a remote executor: it registers over the JSON
// API, leases queued jobs, runs them through the identical execution path
// (so results are byte-for-byte what the coordinator would have produced),
// and streams sweep events back as lease heartbeats. A worker that dies
// mid-job costs nothing but time: the coordinator requeues the job when
// the lease expires.
//
// API (JSON; see the README's Service section for the full table):
//
//	POST   /v1/jobs                 {"workload":"candmc","scale":"quick","eps":[0.125]}
//	                                (optional "strategy": exhaustive, random:N,
//	                                halving[:ETA], or surrogate:N[:BATCH])
//	GET    /v1/jobs                 all jobs
//	GET    /v1/jobs/{id}            job status
//	DELETE /v1/jobs/{id}            cancel
//	GET    /v1/jobs/{id}/events     progress (SSE)
//	GET    /v1/jobs/{id}/result     result envelope (schemaVersion 3)
//	GET    /v1/workloads            registered workload catalog
//	GET    /v1/profiles/{workload}  accumulated warm-start profile
//	POST   /v1/workers (+lease/events/result routes)  worker protocol
//
// With -addr ending in :0 the kernel picks a free port; the chosen
// address is printed as "listening on http://..." so scripts (like the CI
// smoke job) can scrape it. Shutdown is graceful: SIGINT/SIGTERM stops
// accepting requests, lets in-flight jobs finish within -grace, then
// cancels whatever is left.
//
// Observability: GET /v1/metrics (JSON) and GET /metrics (Prometheus
// text) expose the scheduler's instrument set, GET /v1/jobs/{id}/trace a
// locally executed job's span events, and -debug-addr starts a separate
// net/http/pprof listener (both modes — profiling a worker works the same
// way). The pprof listener is opt-in and on its own address so profiling
// endpoints never share a port with the public API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"critter/internal/mpi"
	"critter/internal/service"
	"critter/internal/sim"
	"critter/internal/store"
	_ "critter/internal/workload" // the default registry's built-ins
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	runners := flag.Int("runners", 1, "concurrently executing jobs (<0 = none: jobs run only on joined workers)")
	queue := flag.Int("queue", 16, "bounded pending-job queue size")
	workers := flag.Int("workers", 0, "per-job concurrent sweep workers (0 = GOMAXPROCS)")
	history := flag.Int("history", 256, "finished jobs retained for status/result lookups (oldest evicted beyond this; <0 = unlimited)")
	storeDir := flag.String("store", "", "durable store directory for jobs + profiles (empty = in-memory only)")
	lease := flag.Duration("lease", 10*time.Second, "worker lease TTL before jobs are requeued")
	grace := flag.Duration("grace", 30*time.Second, "graceful-shutdown window for in-flight jobs")
	mode := flag.String("mode", "serve", `"serve" (coordinator) or "worker" (join a coordinator)`)
	join := flag.String("join", "", "coordinator base URL to join in worker mode, e.g. http://host:8080")
	name := flag.String("name", "", "worker name shown in GET /v1/workers (worker mode)")
	poll := flag.Duration("poll", 500*time.Millisecond, "idle lease-poll interval (worker mode)")
	memo := flag.Int("memo", 1024, "memoized finished jobs answering identical resubmissions instantly (<0 = off)")
	traceEvents := flag.Int("trace-events", 4096, "per-job span-trace ring size served at /v1/jobs/{id}/trace (<0 = off)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this separate address (empty = off; both modes)")
	schedFlag := flag.String("sched", "auto", "world scheduler for job execution: "+mpi.SchedulerNames()+" (results are byte-identical under every choice; both modes)")
	flag.Parse()

	worldSched, err := mpi.ParseScheduler(*schedFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "critter-serve: %v\n", err)
		os.Exit(2)
	}

	if *debugAddr != "" {
		if err := startDebug(*debugAddr); err != nil {
			fmt.Fprintf(os.Stderr, "critter-serve: debug listener: %v\n", err)
			os.Exit(1)
		}
	}

	switch *mode {
	case "worker":
		os.Exit(runWorker(*join, *name, *workers, worldSched, *poll))
	case "serve":
	default:
		fmt.Fprintf(os.Stderr, "critter-serve: unknown -mode %q (want serve or worker)\n", *mode)
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "critter-serve: ", log.LstdFlags)
	cfg := service.Config{
		Machine:     sim.DefaultMachine(),
		QueueSize:   *queue,
		Runners:     *runners,
		Workers:     *workers,
		Scheduler:   worldSched,
		MaxHistory:  *history,
		MaxMemo:     *memo,
		TraceEvents: *traceEvents,
		LeaseTTL:    *lease,
		Logf:        logger.Printf,
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "critter-serve: open store: %v\n", err)
			os.Exit(1)
		}
		defer st.Close()
		cfg.Durable = st
		fmt.Printf("critter-serve: durable store at %s (%d records)\n", st.Dir(), st.Len())
	}

	sched := service.New(cfg)
	httpSrv := &http.Server{Handler: service.NewServer(sched)}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "critter-serve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("critter-serve: listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	served := make(chan error, 1)
	go func() { served <- httpSrv.Serve(ln) }()

	select {
	case err := <-served:
		// Serve only returns on listener failure here; shutdown goes
		// through the signal path below.
		fmt.Fprintf(os.Stderr, "critter-serve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Println("critter-serve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "critter-serve: http shutdown: %v\n", err)
	}
	if err := sched.Close(shutdownCtx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "critter-serve: scheduler shutdown: %v\n", err)
	}
}

// startDebug serves the pprof handlers on their own listener. An explicit
// mux, not http.DefaultServeMux: importing net/http/pprof registers its
// handlers globally, and the public API server must never inherit them.
func startDebug(addr string) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("critter-serve: pprof on http://%s/debug/pprof/\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintf(os.Stderr, "critter-serve: debug listener: %v\n", err)
		}
	}()
	return nil
}

// runWorker joins a coordinator and serves leases until SIGINT/SIGTERM.
func runWorker(join, name string, workers int, sched mpi.SchedulerKind, poll time.Duration) int {
	if join == "" {
		fmt.Fprintln(os.Stderr, "critter-serve: worker mode needs -join=<coordinator url>")
		return 2
	}
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	logger := log.New(os.Stderr, "critter-worker: ", log.LstdFlags)
	w, err := service.NewWorker(service.WorkerOptions{
		Base:      join,
		Name:      name,
		Machine:   sim.DefaultMachine(),
		Workers:   workers,
		Scheduler: sched,
		Poll:      poll,
		Logf:      logger.Printf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "critter-serve: %v\n", err)
		return 1
	}
	fmt.Printf("critter-serve: worker %q joining %s\n", name, join)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "critter-serve: worker: %v\n", err)
		return 1
	}
	fmt.Printf("critter-serve: worker shut down after %d completed jobs\n", w.Completed())
	return 0
}
