// Command envelopediff compares the result grid inside a tuning-run
// envelope (critter-tune -json output, or a critter-serve
// /v1/jobs/{id}/result response) byte-for-byte against a committed golden
// grid file (internal/autotune/testdata/*.golden.json). The CI service
// smoke job uses it to prove an end-to-end served job reproduces the same
// grid the golden tests pin.
//
// Usage:
//
//	envelopediff -golden internal/autotune/testdata/envelope_candmc_exhaustive.golden.json result.json
//
// Exits 0 when the grids match, 1 on mismatch (with a first-difference
// report), 2 on usage or decode errors — including envelopes with unknown
// future schema versions, which DecodeEnvelope rejects.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"critter/internal/autotune"
)

func main() {
	golden := flag.String("golden", "", "committed golden result-grid JSON to compare against")
	flag.Parse()
	if *golden == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: envelopediff -golden grid.golden.json envelope.json")
		os.Exit(2)
	}

	envData, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	env, err := autotune.DecodeEnvelope(envData)
	if err != nil {
		fatal(err)
	}
	if env.Result == nil {
		fatal(fmt.Errorf("envelope %s carries no result grid", flag.Arg(0)))
	}
	// Re-marshal the decoded grid exactly as the golden tests do; float64
	// values survive the JSON round trip bit-for-bit (shortest-round-trip
	// formatting), so equal grids produce equal bytes.
	got, err := json.MarshalIndent(env.Result, "", "  ")
	if err != nil {
		fatal(err)
	}
	got = append(got, '\n')

	want, err := os.ReadFile(*golden)
	if err != nil {
		fatal(err)
	}
	if string(got) == string(want) {
		fmt.Printf("envelopediff: result grid matches %s (%d bytes)\n", *golden, len(want))
		return
	}
	line, context := firstDiff(string(want), string(got))
	fmt.Fprintf(os.Stderr, "envelopediff: result grid diverges from %s at line %d:\n%s\n", *golden, line, context)
	os.Exit(1)
}

// firstDiff locates the first differing line and renders a want/got pair.
func firstDiff(want, got string) (line int, context string) {
	w, g := splitLines(want), splitLines(got)
	for i := 0; i < len(w) || i < len(g); i++ {
		var wl, gl string
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl != gl {
			return i + 1, fmt.Sprintf("  golden: %s\n  got:    %s", wl, gl)
		}
	}
	return 0, "  (grids differ only in trailing bytes)"
}

func splitLines(s string) []string {
	return strings.Split(strings.TrimSuffix(s, "\n"), "\n")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "envelopediff: %v\n", err)
	os.Exit(2)
}
