// Command critter-trace summarizes a JSONL trace written by critter-tune
// -trace (or any obs.JSONL tracer): a per-phase breakdown of event
// counts, completed spans, wall time (from the tracer's WallNanos
// stamps), virtual time (from the simulation's clocks), and heap growth,
// plus a per-op table of the kernel-propagation rounds. The rounds table
// separates memoized skips — rounds whose skip decision was replayed from
// the sweep-scoped kernel memo rather than freshly tested — so the memo's
// contribution to a run is visible per operation.
//
// Usage:
//
//	critter-trace trace.jsonl
//	critter-tune -study capital -eps 0.125 -trace /dev/stdout | critter-trace -
//
// Wall durations are computed by pairing begin/end events of the same
// span identity (kind + job + policy + eps + config). Concurrent sweeps
// interleave freely in the file; pairing by identity keeps their
// durations separate. Unpaired begins (a crashed or truncated run) are
// reported, not silently dropped.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"critter/internal/obs"
)

// spanKey identifies one span across its begin/end pair.
type spanKey struct {
	kind   string
	job    string
	policy string
	eps    float64
	config int
}

// phaseStats accumulates one kind's row of the summary table.
type phaseStats struct {
	events    int
	spans     int
	unpaired  int
	wallNanos int64
	virtual   float64
	alloc     uint64
	errors    int
}

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: critter-trace <trace.jsonl | ->")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	var in io.Reader = os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "critter-trace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	if err := summarize(in, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "critter-trace: %v\n", err)
		os.Exit(1)
	}
}

// kindOrder fixes the table's row order outermost-first; kinds the file
// introduces beyond these append after, in first-seen order.
var kindOrder = []string{obs.KindJob, obs.KindSweep, obs.KindConfig, obs.KindStrategy, obs.KindRound}

// summarize reads one JSONL trace and writes the breakdown tables.
func summarize(in io.Reader, out io.Writer) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)

	stats := make(map[string]*phaseStats)
	var order []string
	forKind := func(kind string) *phaseStats {
		ps, ok := stats[kind]
		if !ok {
			ps = &phaseStats{}
			stats[kind] = ps
			order = append(order, kind)
		}
		return ps
	}
	for _, k := range kindOrder {
		forKind(k)
	}

	open := make(map[spanKey]int64)     // span identity -> begin WallNanos
	rounds := make(map[string]*opStats) // round op -> counts
	schema := 0
	total, malformed := 0, 0

	for line := 1; sc.Scan(); line++ {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if line == 1 {
			var hdr struct {
				TraceSchemaVersion int `json:"traceSchemaVersion"`
			}
			if err := json.Unmarshal(raw, &hdr); err == nil && hdr.TraceSchemaVersion > 0 {
				schema = hdr.TraceSchemaVersion
				continue
			}
			// No header: a bare event stream is still summarizable.
		}
		var ev obs.Event
		if err := json.Unmarshal(raw, &ev); err != nil || ev.Kind == "" {
			malformed++
			continue
		}
		total++
		ps := forKind(ev.Kind)
		ps.events++
		if ev.Error != "" {
			ps.errors++
		}
		if ev.Kind == obs.KindRound {
			os, ok := rounds[ev.Name]
			if !ok {
				os = &opStats{}
				rounds[ev.Name] = os
			}
			os.count++
			if ev.Memoized > 0 {
				os.memoized++
			}
		}
		key := spanKey{kind: ev.Kind, job: ev.Job, policy: ev.Policy, eps: ev.Eps, config: ev.Config}
		switch ev.Phase {
		case obs.PhaseBegin:
			open[key] = ev.WallNanos
		case obs.PhaseEnd:
			ps.spans++
			ps.virtual += ev.Virtual
			ps.alloc += ev.AllocBytes
			if begin, ok := open[key]; ok {
				delete(open, key)
				if ev.WallNanos >= begin {
					ps.wallNanos += ev.WallNanos - begin
				}
			} else {
				ps.unpaired++
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("read trace: %w", err)
	}

	fmt.Fprintf(out, "trace: %d events", total)
	if schema > 0 {
		fmt.Fprintf(out, " (schema %d)", schema)
	}
	if malformed > 0 {
		fmt.Fprintf(out, ", %d malformed lines skipped", malformed)
	}
	fmt.Fprintln(out)
	fmt.Fprintln(out)

	fmt.Fprintf(out, "%-10s %8s %8s %12s %12s %14s %7s\n",
		"phase", "events", "spans", "wall (s)", "virtual (s)", "alloc (B)", "errors")
	for _, kind := range order {
		ps := stats[kind]
		if ps.events == 0 {
			continue
		}
		fmt.Fprintf(out, "%-10s %8d %8s %12s %12s %14s %7d\n",
			kind, ps.events,
			dash(ps.spans, fmt.Sprintf("%d", ps.spans)),
			dash64(ps.wallNanos, fmt.Sprintf("%.3f", float64(ps.wallNanos)/1e9)),
			dashF(ps.virtual, fmt.Sprintf("%.4g", ps.virtual)),
			dashU(ps.alloc, fmt.Sprintf("%d", ps.alloc)),
			ps.errors)
	}
	unpaired := len(open)
	for _, ps := range stats {
		unpaired += ps.unpaired
	}
	if unpaired > 0 {
		fmt.Fprintf(out, "\n%d unpaired span events (truncated or interrupted run)\n", unpaired)
	}

	if len(rounds) > 0 {
		ops := make([]string, 0, len(rounds))
		for op := range rounds {
			ops = append(ops, op)
		}
		sort.Slice(ops, func(i, k int) bool {
			if rounds[ops[i]].count != rounds[ops[k]].count {
				return rounds[ops[i]].count > rounds[ops[k]].count
			}
			return ops[i] < ops[k]
		})
		fmt.Fprintln(out)
		fmt.Fprintln(out, "rounds by op:")
		fmt.Fprintf(out, "  %-12s %8s %10s\n", "op", "rounds", "memoized")
		for _, op := range ops {
			os := rounds[op]
			fmt.Fprintf(out, "  %-12s %8d %10s\n", op, os.count, dash(os.memoized, fmt.Sprintf("%d", os.memoized)))
		}
	}
	return nil
}

// opStats is one round op's row: total rounds and how many were skips the
// sweep-scoped kernel memo answered (the trace event's memoized flag).
type opStats struct {
	count    int
	memoized int
}

// dash renders "-" for zero-valued cells so the table reads as "not
// applicable" rather than "measured zero".
func dash(n int, s string) string {
	if n == 0 {
		return "-"
	}
	return s
}

func dash64(n int64, s string) string {
	if n == 0 {
		return "-"
	}
	return s
}

func dashF(v float64, s string) string {
	if v == 0 {
		return "-"
	}
	return s
}

func dashU(v uint64, s string) string {
	if v == 0 {
		return "-"
	}
	return s
}
