// Command figures regenerates the data series of the paper's evaluation
// figures on the simulated substrate. The tuning figures (4, 5, and the
// selection-quality table) drive every study of the figure through one
// shared pool of Tuners, so all (study, policy, eps) sweeps share a
// bounded worker pool.
//
// Usage:
//
//	figures -fig 3 [-study capital|slate-chol|candmc|slate-qr] [-scale default|quick]
//	figures -fig 4 [-study capital|slate-chol] [-neps 11]
//	figures -fig 5 [-study candmc|slate-qr] [-neps 11]
//	figures -fig select -study capital
//
// Every figure accepts -workers N (bounded pool, 0 = GOMAXPROCS) and
// -progress (per-completion lines on stderr): figure 3 parallelizes across
// studies and configurations, the tuning figures across every (study,
// policy, eps) sweep. The tuning figures run through Tuners, so -strategy
// selects the search strategy (exhaustive reproduces the paper) and
// -timeout cancels the remaining sweeps at a deadline. -profile-in
// warm-starts every tuning sweep from a previously exported kernel profile
// and -profile-out persists the suite's merged learned profile.
//
// Figure 3 prints BSP cost trade-offs and execution-time breakdowns per
// configuration; Figures 4 and 5 print tuning time, kernel time, and
// prediction error versus confidence tolerance per policy.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"critter/internal/autotune"
	"critter/internal/critter"
	"critter/internal/figures"
	"critter/internal/sim"
	"critter/internal/workload"
)

// paperOrder is the order the paper presents its four case studies in;
// Figure 3 runs all of them.
var paperOrder = []string{"capital", "slate-chol", "candmc", "slate-qr"}

func main() {
	fig := flag.String("fig", "3", "figure to regenerate: 3, 4, 5, or select")
	studyName := flag.String("study", "", "workload: "+strings.Join(workload.Names(), ", ")+" (default: all for the figure)")
	scaleName := flag.String("scale", "default", "problem scale: "+strings.Join(workload.Default().ScaleNames(), ", "))
	seed := flag.Uint64("seed", 42, "noise seed")
	neps := flag.Int("neps", 11, "number of tolerance points (eps = 2^0 .. 2^-(neps-1))")
	noise := flag.Float64("noise", 0.05, "machine noise sigma")
	workers := flag.Int("workers", 0, "concurrent sweep workers (0 = GOMAXPROCS)")
	progress := flag.Bool("progress", false, "report per-sweep progress on stderr")
	strategyFlag := flag.String("strategy", "exhaustive", "search strategy for the tuning figures: "+autotune.StrategyNames)
	timeout := flag.Duration("timeout", 0, "overall deadline (0 = none); on expiry remaining sweeps are cancelled")
	profileIn := flag.String("profile-in", "", "warm-start the tuning figures' sweeps from this kernel profile (JSON)")
	profileOut := flag.String("profile-out", "", "write the tuning figures' merged learned kernel profile to this file")
	flag.Parse()

	if *neps < 1 {
		fmt.Fprintf(os.Stderr, "figures: -neps must be at least 1, got %d\n", *neps)
		os.Exit(2)
	}
	machine := sim.DefaultMachine()
	machine.NoiseSigma = *noise
	strategy, err := autotune.ParseStrategy(*strategyFlag, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(2)
	}
	if *profileIn != "" {
		data, err := os.ReadFile(*profileIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(2)
		}
		prior, err := critter.DecodeProfile(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", *profileIn, err)
			os.Exit(2)
		}
		// The decorator threads the prior into every sweep the suite plans.
		strategy = autotune.WarmStart(strategy, prior)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var order []string
	switch *fig {
	case "3":
		order = paperOrder
	case "4", "select":
		order = []string{"capital", "slate-chol"}
	case "5":
		order = []string{"candmc", "slate-qr"}
	default:
		fmt.Fprintf(os.Stderr, "figures: unknown figure %q\n", *fig)
		os.Exit(2)
	}
	if *studyName != "" {
		order = []string{*studyName}
	}
	// Each workload resolves the -scale name against its own declared
	// presets (the registry's per-workload scale namespace).
	sts, err := figures.StudiesFor(nil, order, *scaleName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(2)
	}

	eps := autotune.EpsList(*neps)

	if *fig == "3" {
		var f3report func(string, int, int)
		if *progress {
			f3report = func(name string, done, total int) {
				fmt.Fprintf(os.Stderr, "figures: [%d/%d] %s full-execution pass\n", done, total, name)
			}
		}
		f3s, err := figures.RunFig3All(ctx, sts, machine, *seed, *workers, f3report)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		for _, f3 := range f3s {
			f3.Print(os.Stdout)
			fmt.Println()
		}
		return
	}

	// Figures 4, 5, and the selection table: one suite over every study of
	// the figure, all sweeps sharing the worker pool.
	var report func(autotune.Progress)
	if *progress {
		report = func(ev autotune.Progress) {
			status := ""
			if ev.Err != nil {
				status = "  FAILED"
			}
			fmt.Fprintf(os.Stderr, "figures: [%d/%d] %s policy %s eps 2^%.0f%s\n",
				ev.Done, ev.Total, ev.Study, ev.Policy, math.Log2(ev.Eps), status)
		}
	}
	tns, err := figures.RunTuningSuite(ctx, sts, machine, *seed, eps, strategy, *workers, report)
	if err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}
	for _, tn := range tns {
		if *fig == "select" {
			tn.PrintSelection(os.Stdout)
		} else {
			tn.PrintAll(os.Stdout)
		}
		fmt.Println()
	}
	if *profileOut != "" {
		var merged *critter.Profile
		for _, tn := range tns {
			merged = critter.MergeProfiles(merged, autotune.MergedProfile(tn.Res))
		}
		if err := autotune.WriteProfileFile(*profileOut, merged); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
	}
}
