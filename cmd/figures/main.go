// Command figures regenerates the data series of the paper's evaluation
// figures on the simulated substrate.
//
// Usage:
//
//	figures -fig 3 [-study capital|slate-chol|candmc|slate-qr] [-scale default|quick]
//	figures -fig 4 [-study capital|slate-chol] [-neps 11]
//	figures -fig 5 [-study candmc|slate-qr] [-neps 11]
//	figures -fig select -study capital
//
// Figure 3 prints BSP cost trade-offs and execution-time breakdowns per
// configuration; Figures 4 and 5 print tuning time, kernel time, and
// prediction error versus confidence tolerance per policy.
package main

import (
	"flag"
	"fmt"
	"os"

	"critter/internal/autotune"
	"critter/internal/figures"
	"critter/internal/sim"
)

func main() {
	fig := flag.String("fig", "3", "figure to regenerate: 3, 4, 5, or select")
	studyName := flag.String("study", "", "study: capital, slate-chol, candmc, slate-qr (default: all for the figure)")
	scaleName := flag.String("scale", "default", "problem scale: default or quick")
	seed := flag.Uint64("seed", 42, "noise seed")
	neps := flag.Int("neps", 11, "number of tolerance points (eps = 2^0 .. 2^-(neps-1))")
	noise := flag.Float64("noise", 0.05, "machine noise sigma")
	flag.Parse()

	scale := autotune.DefaultScale()
	if *scaleName == "quick" {
		scale = autotune.QuickScale()
	}
	machine := sim.DefaultMachine()
	machine.NoiseSigma = *noise

	studies := map[string]autotune.Study{
		"capital":    autotune.CapitalCholesky(scale),
		"slate-chol": autotune.SlateCholesky(scale),
		"candmc":     autotune.CandmcQR(scale),
		"slate-qr":   autotune.SlateQR(scale),
	}
	var order []string
	switch *fig {
	case "3":
		order = []string{"capital", "slate-chol", "candmc", "slate-qr"}
	case "4", "select":
		order = []string{"capital", "slate-chol"}
	case "5":
		order = []string{"candmc", "slate-qr"}
	default:
		fmt.Fprintf(os.Stderr, "figures: unknown figure %q\n", *fig)
		os.Exit(2)
	}
	if *studyName != "" {
		if _, ok := studies[*studyName]; !ok {
			fmt.Fprintf(os.Stderr, "figures: unknown study %q\n", *studyName)
			os.Exit(2)
		}
		order = []string{*studyName}
	}

	eps := autotune.DefaultEpsList()
	if *neps < len(eps) {
		eps = eps[:*neps]
	}

	for _, name := range order {
		st := studies[name]
		switch *fig {
		case "3":
			f3, err := figures.RunFig3(st, machine, *seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				os.Exit(1)
			}
			f3.Print(os.Stdout)
		case "4", "5":
			tn, err := figures.RunTuning(st, machine, *seed, eps)
			if err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				os.Exit(1)
			}
			tn.PrintAll(os.Stdout)
		case "select":
			tn, err := figures.RunTuning(st, machine, *seed, eps)
			if err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				os.Exit(1)
			}
			tn.PrintSelection(os.Stdout)
		}
		fmt.Println()
	}
}
