// Command benchdiff compares `go test -bench` output against the committed
// benchmark baseline (BENCH_runtime.json) and fails on regressions past a
// gate threshold. It is the CI guard for the Runtime benchmark suite
// (bench_runtime_test.go): allocs/op is hard-gated for both the propagation
// microbench and the full sweep, and the full sweep's ns/op is gated with
// generous headroom for runner noise; everything else is reported for trend
// reading.
//
// Usage:
//
//	go test -run '^$' -bench 'Propagation|FullSweep' -benchmem -count=5 . | tee bench.txt
//	go run ./cmd/benchdiff -baseline BENCH_runtime.json bench.txt
//
// With -emit-baseline, the committed baseline is re-printed in `go test
// -bench` format (for feeding benchstat alongside a fresh run); with
// -update, the baseline JSON's current-numbers section is rewritten from
// the measured input — tracked benchmarks get their numbers replaced, and
// benchmarks measured for the first time are added (gates and the frozen
// preRefactor block are left untouched; add gates for new benchmarks by
// hand).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's recorded numbers.
type Metrics struct {
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  float64 `json:"bytesPerOp"`
	AllocsPerOp float64 `json:"allocsPerOp"`
}

// Baseline is the schema of BENCH_runtime.json: the gated current numbers,
// the frozen pre-refactor numbers for trajectory context, and the gate
// specification.
type Baseline struct {
	SchemaVersion int    `json:"schemaVersion"`
	Suite         string `json:"suite"`
	// Benchmarks holds the committed numbers new runs are gated against.
	Benchmarks map[string]Metrics `json:"benchmarks"`
	// PreRefactor freezes the numbers from before the Runtime-layer
	// rebuild (PR 4), so the speedup trajectory stays visible.
	PreRefactor map[string]Metrics `json:"preRefactor,omitempty"`
	// Gates lists hard limits: a measured metric may exceed its committed
	// baseline by at most Ratio (1.20 = +20%).
	Gates []Gate `json:"gates"`
}

// Gate is one hard regression limit.
type Gate struct {
	Benchmark string  `json:"benchmark"`
	Metric    string  `json:"metric"` // "allocs_per_op", "ns_per_op", or "bytes_per_op"
	Ratio     float64 `json:"ratio"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_runtime.json", "baseline JSON path")
	emit := flag.Bool("emit-baseline", false, "print the baseline as go-bench lines and exit")
	update := flag.Bool("update", false, "rewrite the baseline's benchmark numbers from the measured input")
	flag.Parse()

	base, err := readBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}
	if *emit {
		emitBaseline(os.Stdout, base)
		return
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	raw, err := io.ReadAll(in)
	if err != nil {
		fatal(err)
	}
	got := parseBench(string(raw))
	if len(got) == 0 {
		fatal(fmt.Errorf("no benchmark result lines found in input"))
	}

	if *update {
		added := 0
		for name, m := range got {
			if _, tracked := base.Benchmarks[name]; !tracked {
				added++
			}
			base.Benchmarks[name] = m
		}
		if err := writeBaseline(*baselinePath, base); err != nil {
			fatal(err)
		}
		fmt.Printf("benchdiff: baseline %s updated (%d benchmarks, %d new)\n",
			*baselinePath, len(got), added)
		return
	}

	failed := compare(os.Stdout, base, got)
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}

func readBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

func writeBaseline(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// parseBench extracts per-benchmark medians from `go test -bench` output.
// Repetitions (-count) are reduced by median, which tolerates one noisy
// rep; the -N GOMAXPROCS suffix is stripped.
func parseBench(out string) map[string]Metrics {
	samples := map[string][]Metrics{}
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var m Metrics
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp, ok = v, true
			case "B/op":
				m.BytesPerOp = v
			case "allocs/op":
				m.AllocsPerOp = v
			}
		}
		if ok {
			samples[name] = append(samples[name], m)
		}
	}
	out2 := make(map[string]Metrics, len(samples))
	for name, ms := range samples {
		out2[name] = Metrics{
			NsPerOp:     median(ms, func(m Metrics) float64 { return m.NsPerOp }),
			BytesPerOp:  median(ms, func(m Metrics) float64 { return m.BytesPerOp }),
			AllocsPerOp: median(ms, func(m Metrics) float64 { return m.AllocsPerOp }),
		}
	}
	return out2
}

func median(ms []Metrics, f func(Metrics) float64) float64 {
	vs := make([]float64, len(ms))
	for i, m := range ms {
		vs[i] = f(m)
	}
	sort.Float64s(vs)
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

func metricOf(m Metrics, name string) float64 {
	switch name {
	case "ns_per_op":
		return m.NsPerOp
	case "bytes_per_op":
		return m.BytesPerOp
	case "allocs_per_op":
		return m.AllocsPerOp
	}
	return 0
}

// compare prints the trajectory table and evaluates the gates, returning
// whether any gate failed.
func compare(w io.Writer, base *Baseline, got map[string]Metrics) bool {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-24s %14s %14s %9s %16s %9s\n",
		"benchmark", "ns/op", "baseline", "ratio", "allocs/op", "ratio")
	for _, name := range names {
		b := base.Benchmarks[name]
		g, ok := got[name]
		if !ok {
			fmt.Fprintf(w, "%-24s MISSING from measured input\n", name)
			continue
		}
		fmt.Fprintf(w, "%-24s %14.0f %14.0f %8.2fx %7.0f vs %5.0f %8.2fx\n",
			name, g.NsPerOp, b.NsPerOp, ratio(g.NsPerOp, b.NsPerOp),
			g.AllocsPerOp, b.AllocsPerOp, ratio(g.AllocsPerOp, b.AllocsPerOp))
		if pre, ok := base.PreRefactor[name]; ok && g.NsPerOp > 0 {
			fmt.Fprintf(w, "%-24s   vs pre-refactor: %.2fx faster, %.2fx fewer allocs/op\n",
				"", pre.NsPerOp/g.NsPerOp, safeDiv(pre.AllocsPerOp, g.AllocsPerOp))
		}
	}
	failed := false
	for _, gate := range base.Gates {
		b, okB := base.Benchmarks[gate.Benchmark]
		g, okG := got[gate.Benchmark]
		if !okB || !okG {
			fmt.Fprintf(w, "GATE %s %s: benchmark missing (baseline %v, measured %v)\n",
				gate.Benchmark, gate.Metric, okB, okG)
			failed = true
			continue
		}
		want, have := metricOf(b, gate.Metric)*gate.Ratio, metricOf(g, gate.Metric)
		if have > want {
			fmt.Fprintf(w, "GATE FAIL %s %s: measured %.0f > %.0f (baseline %.0f x %.2f)\n",
				gate.Benchmark, gate.Metric, have, want, metricOf(b, gate.Metric), gate.Ratio)
			failed = true
		} else {
			fmt.Fprintf(w, "GATE ok   %s %s: measured %.0f <= %.0f\n",
				gate.Benchmark, gate.Metric, have, want)
		}
	}
	return failed
}

func ratio(a, b float64) float64 { return safeDiv(a, b) }

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// emitBaseline prints the committed numbers as go-bench lines, so benchstat
// can diff a fresh run against the baseline without a stored text file.
func emitBaseline(w io.Writer, base *Baseline) {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := base.Benchmarks[name]
		fmt.Fprintf(w, "%s 1 %.0f ns/op %.0f B/op %.0f allocs/op\n",
			name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
	}
}
