// Command critter-shootout races the registered search strategies against
// each other on the built-in workloads and scores them against the
// exhaustive sweep's ground truth: for every (workload, strategy) cell it
// reports the executed-kernel budget the strategy spent, the full-execution
// gap of the configuration it selected relative to the space's true
// optimum, and how many executed kernels it needed before its running
// choice was within epsilon of that optimum.
//
// The shootout is fully deterministic: every sweep runs in its own
// simulated world seeded identically, so repeated runs (at any worker
// count, under either scheduler) produce byte-identical scoreboards, and
// the committed baseline BENCH_shootout.json can gate it at ratio 1.0
// through cmd/benchdiff.
//
// Usage:
//
//	critter-shootout -scale quick
//	critter-shootout -scale quick -golden-dir internal/autotune/testdata -require 2
//	critter-shootout -scale quick -markdown BENCH_shootout.md | go run ./cmd/benchdiff -baseline BENCH_shootout.json
//	critter-shootout -scale quick -baseline-out BENCH_shootout.json   # regenerate the committed baseline
//
// Stdout carries `go test -bench`-style result lines (benchdiff's input
// format); the human-readable scoreboard goes to stderr and, with
// -markdown, to a Markdown file. -golden-dir additionally cross-checks the
// reference exhaustive sweep byte-for-byte against the committed golden
// envelopes, tying the scoreboard's ground truth to the repo's determinism
// anchor. -require N exits nonzero unless the surrogate strategy lands
// within -epsilon of the optimum on at least N workloads while executing
// at most -require-frac of the exhaustive sweep's kernels — the paper-level
// claim CI enforces.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"critter/internal/autotune"
	"critter/internal/critter"
	"critter/internal/mpi"
	"critter/internal/sim"
	"critter/internal/workload"
)

func main() {
	// The default study list is the four canonical golden-backed workloads;
	// the registry's extra names are aliases (cholesky3d, qr2d) that would
	// duplicate rows.
	studiesFlag := flag.String("studies", "capital,slate-chol,candmc,slate-qr",
		"comma-separated workloads to race (registry: "+strings.Join(workload.Names(), ", ")+")")
	scaleName := flag.String("scale", "quick", "problem scale: "+strings.Join(workload.Default().ScaleNames(), ", "))
	policyFlag := flag.String("policy", "online", "selective-execution policy every sweep runs under")
	epsFlag := flag.Float64("eps", 0.125, "confidence tolerance every sweep targets")
	seed := flag.Uint64("seed", 42, "noise seed")
	noise := flag.Float64("noise", 0.05, "machine noise sigma")
	workers := flag.Int("workers", 0, "concurrent sweep workers (0 = GOMAXPROCS); any count scores identically")
	schedFlag := flag.String("sched", "auto", "world scheduler: "+mpi.SchedulerNames())
	strategiesFlag := flag.String("strategies", "exhaustive,random:@,halving,surrogate:@",
		"comma-separated strategy specs ("+autotune.StrategyNames+"); @ expands to the per-workload budget")
	budgetFrac := flag.Float64("budget-frac", 0.4, "per-workload budget for @: this fraction of the space size (at least dims+2)")
	epsilon := flag.Float64("epsilon", 0.05, "scoring tolerance: a selection within this fraction of the optimum counts as a hit")
	markdownOut := flag.String("markdown", "", "write the scoreboard as Markdown to this file")
	baselineOut := flag.String("baseline-out", "", "write the scoreboard as a benchdiff baseline JSON to this file (gates at ratio 1.0)")
	goldenDir := flag.String("golden-dir", "", "cross-check the reference exhaustive sweep against the golden envelopes in this directory")
	require := flag.Int("require", 0, "exit nonzero unless the surrogate hits epsilon within -require-frac of exhaustive kernels on at least N workloads")
	requireFrac := flag.Float64("require-frac", 0.5, "kernel-budget fraction the -require check holds the surrogate to")
	flag.Parse()

	policy, err := critter.ParsePolicy(*policyFlag)
	if err != nil {
		fatal(err)
	}
	sched, err := mpi.ParseScheduler(*schedFlag)
	if err != nil {
		fatal(err)
	}
	machine := sim.DefaultMachine()
	machine.NoiseSigma = *noise

	var boards []*board
	for _, name := range strings.Split(*studiesFlag, ",") {
		name = strings.TrimSpace(name)
		study, err := workload.ResolveStudy(nil, name, *scaleName)
		if err != nil {
			fatal(err)
		}
		b, err := race(raceSpec{
			study: study, workload: name,
			policy: policy, eps: *epsFlag, epsilon: *epsilon,
			machine: machine, seed: *seed, sched: sched, workers: *workers,
			specs: expandSpecs(strings.Split(*strategiesFlag, ","), budget(study, *budgetFrac)),
		})
		if err != nil {
			fatal(err)
		}
		if *goldenDir != "" {
			switch err := crossCheck(*goldenDir, name, policy, *epsFlag, b.reference); {
			case os.IsNotExist(err):
				// Not every workload has a committed golden grid; the
				// cross-check anchors the ones that do.
				fmt.Fprintf(os.Stderr, "golden cross-check skipped: no %s\n", goldenPath(*goldenDir, name))
			case err != nil:
				fatal(err)
			default:
				fmt.Fprintf(os.Stderr, "golden cross-check ok: %s reference sweep matches %s\n",
					name, goldenPath(*goldenDir, name))
			}
		}
		boards = append(boards, b)
	}

	printBench(os.Stdout, boards)
	printBoards(os.Stderr, boards, *epsilon)
	if *markdownOut != "" {
		var md strings.Builder
		writeMarkdown(&md, boards, *epsilon)
		if err := os.WriteFile(*markdownOut, []byte(md.String()), 0o644); err != nil {
			fatal(err)
		}
	}
	if *baselineOut != "" {
		if err := writeBaseline(*baselineOut, boards); err != nil {
			fatal(err)
		}
	}
	if *require > 0 {
		hits := surrogateHits(boards, *requireFrac)
		if hits < *require {
			fatal(fmt.Errorf("surrogate within epsilon at <= %.0f%% of exhaustive kernels on %d workloads, need %d",
				100**requireFrac, hits, *require))
		}
		fmt.Fprintf(os.Stderr, "require ok: surrogate hit epsilon within %.0f%% of exhaustive kernels on %d/%d workloads\n",
			100**requireFrac, hits, len(boards))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "critter-shootout:", err)
	os.Exit(1)
}

// budget is the evaluation budget @ expands to: a fraction of the space,
// but never below the surrogate's minimum useful initial design.
func budget(study autotune.Study, frac float64) int {
	n := int(math.Round(frac * float64(study.Size())))
	if min := len(study.Space.Dims) + 2; n < min {
		n = min
	}
	if n > study.Size() {
		n = study.Size()
	}
	return n
}

// expandSpecs substitutes the per-workload budget for @ in the strategy
// spec list.
func expandSpecs(specs []string, budget int) []string {
	out := make([]string, 0, len(specs))
	for _, s := range specs {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		out = append(out, strings.ReplaceAll(s, "@", fmt.Sprint(budget)))
	}
	return out
}

// row is one (workload, strategy) cell of the scoreboard.
type row struct {
	Strategy string `json:"strategy"`
	// Executed is the strategy's spent budget: kernels actually executed
	// across its selective sweeps.
	Executed int64 `json:"executed"`
	// KernelFrac is Executed relative to the exhaustive reference.
	KernelFrac float64 `json:"kernelFrac"`
	// Selected is the configuration the strategy chose (argmin predicted).
	Selected int `json:"selected"`
	// Gap is the selected configuration's true (full-execution) time over
	// the space optimum's, minus one; 0 means the strategy found the true
	// optimum. Ground truth is the reference sweep's full executions.
	Gap float64 `json:"gap"`
	// KernelsToEps is the cumulative executed-kernel count after which the
	// strategy's running selection first came (and stayed, as of that
	// evaluation) within epsilon of the optimum; -1 if it never did.
	KernelsToEps int64 `json:"kernelsToEps"`
	// TuneWall is the sweep's total selective virtual time (tuning cost).
	TuneWall float64 `json:"tuneWall"`
}

// board is one workload's scoreboard plus its reference sweep.
type board struct {
	Workload  string `json:"workload"`
	Study     string `json:"study"`
	Configs   int    `json:"configs"`
	Optimal   int    `json:"optimal"`
	Rows      []row  `json:"rows"`
	reference autotune.SweepResult
}

type raceSpec struct {
	study    autotune.Study
	workload string
	policy   critter.Policy
	eps      float64
	epsilon  float64
	machine  sim.Machine
	seed     uint64
	sched    mpi.SchedulerKind
	workers  int
	specs    []string
}

// race runs every strategy spec over one workload and scores it against the
// exhaustive reference. The reference is always run (it is the ground
// truth) but appears as a row only when listed.
func race(rs raceSpec) (*board, error) {
	reference, err := runSweep(rs, autotune.Exhaustive{})
	if err != nil {
		return nil, fmt.Errorf("%s: exhaustive reference: %w", rs.workload, err)
	}
	refFull := fullTable(reference)
	refOpt := math.Inf(1)
	optimal := -1
	for cfg, full := range refFull {
		if full < refOpt || (full == refOpt && cfg < optimal) {
			refOpt, optimal = full, cfg
		}
	}
	b := &board{
		Workload:  rs.workload,
		Study:     rs.study.Name,
		Configs:   rs.study.Size(),
		Optimal:   optimal,
		reference: reference,
	}
	for _, spec := range rs.specs {
		strat, err := autotune.ParseStrategy(spec, rs.seed)
		if err != nil {
			return nil, err
		}
		sweep := reference
		if strat.Name() != (autotune.Exhaustive{}).Name() {
			if sweep, err = runSweep(rs, strat); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", rs.workload, spec, err)
			}
		}
		b.Rows = append(b.Rows, score(sweep, strat.Name(), refFull, refOpt, reference.Executed, rs.epsilon))
	}
	return b, nil
}

// runSweep executes one single-cell tuning run and returns its sweep.
func runSweep(rs raceSpec, strat autotune.Strategy) (autotune.SweepResult, error) {
	res, err := autotune.Tuner{
		Study:     rs.study,
		EpsList:   []float64{rs.eps},
		Machine:   rs.machine,
		Seed:      rs.seed,
		Policies:  []critter.Policy{rs.policy},
		Strategy:  strat,
		Scheduler: rs.sched,
		Workers:   rs.workers,
	}.Run(context.Background())
	if err != nil {
		return autotune.SweepResult{}, err
	}
	return res.Sweeps[0][0], nil
}

// fullTable maps each configuration the sweep evaluated to its
// full-execution wall time, last evaluation winning (matching the tuner's
// selection rule for rung strategies).
func fullTable(sw autotune.SweepResult) map[int]float64 {
	t := make(map[int]float64, len(sw.Configs))
	for _, cr := range sw.Configs {
		t[cr.Config] = cr.Full.Wall
	}
	return t
}

// score reduces one strategy sweep to its scoreboard row against the
// reference ground truth.
func score(sw autotune.SweepResult, name string, refFull map[int]float64, refOpt float64, refExecuted int64, epsilon float64) row {
	r := row{
		Strategy:     name,
		Executed:     sw.Executed,
		Selected:     sw.Selected,
		KernelsToEps: -1,
		TuneWall:     sw.TuneWall,
	}
	if refExecuted > 0 {
		r.KernelFrac = float64(sw.Executed) / float64(refExecuted)
	}
	if full, ok := refFull[sw.Selected]; ok && refOpt > 0 {
		if r.Gap = full/refOpt - 1; r.Gap < 0 {
			r.Gap = 0
		}
	}
	// Walk the evaluations in order, replaying the tuner's
	// last-evaluation-wins argmin over the prefix, to find the executed
	// budget at which the running choice entered epsilon.
	predicted := map[int]float64{}
	order := []int{}
	var executed int64
	for _, cr := range sw.Configs {
		executed += cr.Selective.Executed
		if _, seen := predicted[cr.Config]; !seen {
			order = append(order, cr.Config)
		}
		predicted[cr.Config] = cr.Selective.Predicted
		choice, best := -1, math.Inf(1)
		for _, cfg := range order {
			if p := predicted[cfg]; p < best {
				choice, best = cfg, p
			}
		}
		if full, ok := refFull[choice]; ok && refOpt > 0 && full/refOpt-1 <= epsilon {
			if r.KernelsToEps < 0 {
				r.KernelsToEps = executed
			}
		} else {
			r.KernelsToEps = -1 // left epsilon again; only a lasting entry counts
		}
	}
	return r
}

// surrogateHits counts the workloads whose surrogate row landed (and
// stayed) within epsilon of the optimum on at most frac of the exhaustive
// kernel budget. KernelsToEps >= 0 encodes the epsilon hit: the walk in
// score resets it whenever the running choice leaves epsilon, so a
// non-negative value means the final selection is inside.
func surrogateHits(boards []*board, frac float64) int {
	hits := 0
	for _, b := range boards {
		for _, r := range b.Rows {
			if strings.HasPrefix(r.Strategy, "surrogate:") && r.KernelsToEps >= 0 && r.KernelFrac <= frac {
				hits++
				break
			}
		}
	}
	return hits
}

// benchName renders a workload or strategy token as a CamelCase benchmark
// name fragment: "slate-chol" -> "SlateChol", "surrogate:8" ->
// "Surrogate8", "surrogate:8:2" -> "Surrogate8x2". Dash-free, so
// benchdiff's GOMAXPROCS-suffix stripping never bites.
func benchName(s string) string {
	parts := strings.FieldsFunc(s, func(r rune) bool { return r == '-' || r == '_' })
	var out strings.Builder
	for _, p := range parts {
		segs := strings.Split(p, ":")
		for i, seg := range segs {
			if seg == "" {
				continue
			}
			if i >= 2 {
				out.WriteByte('x')
			}
			out.WriteString(strings.ToUpper(seg[:1]) + seg[1:])
		}
	}
	return out.String()
}

// printBench emits the scoreboard as `go test -bench` result lines —
// benchdiff's input format — one Kernels and one GapBps metric per cell.
// The simulation is deterministic, so the committed baseline gates these at
// ratio 1.0.
func printBench(w io.Writer, boards []*board) {
	for _, b := range boards {
		for _, r := range b.Rows {
			prefix := "BenchmarkShootout" + benchName(b.Workload) + benchName(r.Strategy)
			fmt.Fprintf(w, "%sKernels 1 %d ns/op\n", prefix, r.Executed)
			fmt.Fprintf(w, "%sGapBps 1 %d ns/op\n", prefix, int64(math.Round(10000*r.Gap)))
		}
	}
}

// printBoards renders the human-readable scoreboard.
func printBoards(w io.Writer, boards []*board, epsilon float64) {
	for _, b := range boards {
		fmt.Fprintf(w, "\n%s (%s): %d configs, optimal %d, epsilon %g\n",
			b.Workload, b.Study, b.Configs, b.Optimal, epsilon)
		fmt.Fprintf(w, "%-16s %9s %7s %9s %8s %7s %12s\n",
			"strategy", "kernels", "frac", "selected", "gap", "hit", "kernelsToEps")
		for _, r := range b.Rows {
			fmt.Fprintf(w, "%-16s %9d %6.0f%% %9d %7.1f%% %7v %12s\n",
				r.Strategy, r.Executed, 100*r.KernelFrac, r.Selected, 100*r.Gap,
				r.Gap <= epsilon, kte(r.KernelsToEps))
		}
	}
}

func kte(v int64) string {
	if v < 0 {
		return "never"
	}
	return fmt.Sprint(v)
}

// writeMarkdown renders the scoreboard as the committed Markdown artifact.
func writeMarkdown(w io.Writer, boards []*board, epsilon float64) {
	fmt.Fprintf(w, "# Strategy shootout\n\n")
	fmt.Fprintf(w, "Every registered search strategy raced on the built-in workloads and\n")
	fmt.Fprintf(w, "scored against the exhaustive sweep's ground truth (gap = selected\n")
	fmt.Fprintf(w, "configuration's full-execution time over the true optimum's, hit =\n")
	fmt.Fprintf(w, "gap within ε = %g). Deterministic; regenerate with:\n\n", epsilon)
	fmt.Fprintf(w, "```\ngo run ./cmd/critter-shootout -scale quick -markdown BENCH_shootout.md -baseline-out BENCH_shootout.json\n```\n")
	for _, b := range boards {
		fmt.Fprintf(w, "\n## %s (%s) — %d configs, optimal %d\n\n", b.Workload, b.Study, b.Configs, b.Optimal)
		fmt.Fprintf(w, "| strategy | kernels | %% of exhaustive | selected | gap | hit | kernels to ε |\n")
		fmt.Fprintf(w, "|---|---|---|---|---|---|---|\n")
		for _, r := range b.Rows {
			fmt.Fprintf(w, "| %s | %d | %.0f%% | %d | %.1f%% | %v | %s |\n",
				r.Strategy, r.Executed, 100*r.KernelFrac, r.Selected, 100*r.Gap,
				r.Gap <= epsilon, kte(r.KernelsToEps))
		}
	}
}

// baseline mirrors cmd/benchdiff's Baseline schema (kept in sync by
// TestShootoutBaselineSchema-style usage in CI: benchdiff reads what this
// writes).
type baseline struct {
	SchemaVersion int                `json:"schemaVersion"`
	Suite         string             `json:"suite"`
	Benchmarks    map[string]metrics `json:"benchmarks"`
	Gates         []gate             `json:"gates"`
}

type metrics struct {
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  float64 `json:"bytesPerOp"`
	AllocsPerOp float64 `json:"allocsPerOp"`
}

type gate struct {
	Benchmark string  `json:"benchmark"`
	Metric    string  `json:"metric"`
	Ratio     float64 `json:"ratio"`
}

// writeBaseline persists the scoreboard as the benchdiff baseline, gating
// every metric at ratio 1.0: the shootout is deterministic, so any drift is
// a real behavior change and must come with a regenerated baseline (same
// contract as the golden envelopes).
func writeBaseline(path string, boards []*board) error {
	base := baseline{
		SchemaVersion: 1,
		Suite:         "cmd/critter-shootout (strategy scoreboard; deterministic, gated exactly)",
		Benchmarks:    map[string]metrics{},
	}
	for _, b := range boards {
		for _, r := range b.Rows {
			prefix := "BenchmarkShootout" + benchName(b.Workload) + benchName(r.Strategy)
			base.Benchmarks[prefix+"Kernels"] = metrics{NsPerOp: float64(r.Executed)}
			base.Benchmarks[prefix+"GapBps"] = metrics{NsPerOp: math.Round(10000 * r.Gap)}
		}
	}
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base.Gates = append(base.Gates, gate{Benchmark: name, Metric: "ns_per_op", Ratio: 1.0})
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// goldenPath names the committed golden envelope backing a workload's
// exhaustive reference.
func goldenPath(dir, workload string) string {
	return filepath.Join(dir, "envelope_"+workload+"_exhaustive.golden.json")
}

// crossCheck ties the shootout's ground truth to the repo's determinism
// anchor: the reference exhaustive sweep must be byte-identical to the
// matching (policy, eps) cell of the committed golden envelope. Golden
// grids exist only for the quick-scale seed-42 noise-0.05 configuration;
// a missing cell is an error (the flag was asked for and cannot hold).
func crossCheck(dir, workload string, policy critter.Policy, eps float64, ref autotune.SweepResult) error {
	path := goldenPath(dir, workload)
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var golden autotune.Result
	if err := json.Unmarshal(data, &golden); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	for pi, pol := range golden.Policies {
		for ei, e := range golden.EpsList {
			if pol != policy || e != eps {
				continue
			}
			want, err := json.Marshal(golden.Sweeps[pi][ei])
			if err != nil {
				return err
			}
			got, err := json.Marshal(ref)
			if err != nil {
				return err
			}
			if string(got) != string(want) {
				return fmt.Errorf("%s: reference exhaustive sweep diverges from golden cell (policy %s, eps %g): determinism broken or goldens stale", path, pol, e)
			}
			return nil
		}
	}
	return fmt.Errorf("%s: no golden cell for policy %s eps %g", path, policy, eps)
}
