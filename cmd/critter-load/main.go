// Command critter-load drives a running critter-serve with concurrent
// clients and reports service-level latency percentiles in Go benchmark
// format, so the numbers feed the same benchdiff gate as the runtime
// microbenchmarks (BENCH_service.json).
//
// Each client loops: submit a job (POST /v1/jobs, honoring 429
// Retry-After backpressure), follow its SSE stream to the terminal event,
// and fetch the result envelope — the full read-after-write path a real
// consumer exercises. A -dup fraction of submissions share one identical
// spec, exercising the scheduler's dedup/memoization; the rest get unique
// seeds and genuinely execute.
//
// Usage:
//
//	critter-load -base http://127.0.0.1:8080 [-clients 8] [-jobs 64]
//	             [-dup 0.5] [-workload candmc] [-scale quick]
//	             [-strategy exhaustive] [-eps 0.125]
//
// Stdout carries benchmark lines (submit/e2e p50/p95/p99 latencies and
// per-job throughput); the human-readable summary — completed jobs,
// deduped share, 429 count — goes to stderr.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type options struct {
	base     string
	clients  int
	jobs     int
	dup      float64
	workload string
	scale    string
	strategy string
	eps      float64
}

// metrics aggregates per-job measurements across clients.
type metrics struct {
	mu        sync.Mutex
	submit    []time.Duration // POST accepted
	e2e       []time.Duration // POST to result fetched
	deduped   int
	completed int
	retries   atomic.Int64 // 429 responses honored
	failed    atomic.Int64
}

func main() {
	var opt options
	flag.StringVar(&opt.base, "base", "http://127.0.0.1:8080", "critter-serve base URL")
	flag.IntVar(&opt.clients, "clients", 8, "concurrent clients")
	flag.IntVar(&opt.jobs, "jobs", 64, "total jobs to run")
	flag.Float64Var(&opt.dup, "dup", 0.5, "fraction of submissions sharing one identical spec (exercises dedup)")
	flag.StringVar(&opt.workload, "workload", "candmc", "workload to submit")
	flag.StringVar(&opt.scale, "scale", "quick", "scale preset")
	flag.StringVar(&opt.strategy, "strategy", "exhaustive", "search strategy")
	flag.Float64Var(&opt.eps, "eps", 0.125, "confidence tolerance")
	flag.Parse()
	if opt.clients < 1 || opt.jobs < 1 || opt.dup < 0 || opt.dup > 1 {
		fmt.Fprintln(os.Stderr, "critter-load: bad -clients/-jobs/-dup")
		os.Exit(2)
	}

	m := &metrics{}
	start := time.Now()
	var wg sync.WaitGroup
	next := &atomic.Int64{}
	for c := 0; c < opt.clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{}
			for {
				n := int(next.Add(1)) - 1
				if n >= opt.jobs {
					return
				}
				runOne(client, opt, n, m)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	if m.completed == 0 {
		fmt.Fprintln(os.Stderr, "critter-load: no job completed")
		os.Exit(1)
	}

	// Benchmark-format lines for benchdiff. Names carry no dash (a dash
	// suffix would parse as a GOMAXPROCS count).
	emit := func(name string, v time.Duration) {
		fmt.Printf("Benchmark%s 1 %d ns/op\n", name, v.Nanoseconds())
	}
	emit("ServiceSubmitP50", percentile(m.submit, 0.50))
	emit("ServiceSubmitP95", percentile(m.submit, 0.95))
	emit("ServiceSubmitP99", percentile(m.submit, 0.99))
	emit("ServiceE2EP50", percentile(m.e2e, 0.50))
	emit("ServiceE2EP95", percentile(m.e2e, 0.95))
	emit("ServiceE2EP99", percentile(m.e2e, 0.99))
	// Throughput as ns per completed job: lower is better, same direction
	// as every other ns/op gate.
	emit("ServiceThroughput", wall/time.Duration(m.completed))

	fmt.Fprintf(os.Stderr, "critter-load: %d jobs in %s (%d clients): %d completed, %d deduped, %d retries after 429, %d failed\n",
		opt.jobs, wall.Round(time.Millisecond), opt.clients, m.completed, m.deduped, m.retries.Load(), m.failed.Load())
	if m.failed.Load() > 0 {
		os.Exit(1)
	}
}

// runOne drives one job end to end: submit (with 429 retry), stream SSE to
// the terminal event, fetch the result.
func runOne(client *http.Client, opt options, n int, m *metrics) {
	// Duplicate-heavy mix: the first ceil(dup*jobs) submissions share seed
	// 1000 (one execution, many coalesced results); the rest get unique
	// seeds. Warm start stays off so deduped jobs are memo-eligible and
	// unique jobs measure full executions.
	seed := uint64(1000)
	if float64(n) >= opt.dup*float64(opt.jobs) {
		seed = 2000 + uint64(n)
	}
	body, err := json.Marshal(map[string]any{
		"workload":  opt.workload,
		"scale":     opt.scale,
		"strategy":  opt.strategy,
		"eps":       []float64{opt.eps},
		"seed":      seed,
		"warmStart": false,
	})
	if err != nil {
		m.failed.Add(1)
		return
	}

	start := time.Now()
	var st struct {
		ID      string `json:"id"`
		Deduped bool   `json:"deduped"`
	}
	for {
		resp, err := client.Post(opt.base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			fmt.Fprintf(os.Stderr, "critter-load: submit: %v\n", err)
			m.failed.Add(1)
			return
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			m.retries.Add(1)
			time.Sleep(retryAfter(resp))
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			fmt.Fprintf(os.Stderr, "critter-load: submit: HTTP %d: %s\n", resp.StatusCode, data)
			m.failed.Add(1)
			return
		}
		if err := json.Unmarshal(data, &st); err != nil || st.ID == "" {
			fmt.Fprintf(os.Stderr, "critter-load: submit: bad status body %q\n", data)
			m.failed.Add(1)
			return
		}
		break
	}
	submitted := time.Since(start)

	if !streamToEnd(client, opt.base+"/v1/jobs/"+st.ID+"/events") {
		fmt.Fprintf(os.Stderr, "critter-load: %s: stream did not end in done\n", st.ID)
		m.failed.Add(1)
		return
	}
	resp, err := client.Get(opt.base + "/v1/jobs/" + st.ID + "/result")
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			resp.Body.Close()
		}
		fmt.Fprintf(os.Stderr, "critter-load: %s: result fetch failed (%v)\n", st.ID, err)
		m.failed.Add(1)
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	total := time.Since(start)

	m.mu.Lock()
	m.submit = append(m.submit, submitted)
	m.e2e = append(m.e2e, total)
	m.completed++
	if st.Deduped {
		m.deduped++
	}
	m.mu.Unlock()
}

// streamToEnd follows an SSE stream and reports whether it ended with a
// done event.
func streamToEnd(client *http.Client, url string) bool {
	resp, err := client.Get(url)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	last := ""
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			last = strings.TrimPrefix(line, "event: ")
		}
	}
	return last == "done"
}

// retryAfter parses the Retry-After header, defaulting to a short pause.
// The header carries whole seconds; under load-test conditions we retry
// faster than a polite production client would, capping the wait.
func retryAfter(resp *http.Response) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if sec, err := strconv.Atoi(s); err == nil && sec > 0 {
			d := time.Duration(sec) * time.Second
			if d > 2*time.Second {
				d = 2 * time.Second
			}
			return d
		}
	}
	return 100 * time.Millisecond
}

// percentile returns the p-th percentile (0..1) of ds.
func percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, k int) bool { return sorted[i] < sorted[k] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
