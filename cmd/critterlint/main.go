// Command critterlint runs critter's project-specific static-analysis
// suite: the analyzers in internal/analysis that machine-enforce the
// repo's determinism and concurrency invariants (detrand, maporder,
// fabriclock, schematag, ctxfirst).
//
// Standalone, over go list patterns:
//
//	go run ./cmd/critterlint ./...
//	go run ./cmd/critterlint -analyzers detrand,maporder ./internal/critter
//
// Or as a vet tool (the driver speaks vet's unit-checker protocol:
// -V=full for tool identity and a JSON .cfg unit file per package):
//
//	go build -o critterlint ./cmd/critterlint
//	go vet -vettool=$(pwd)/critterlint ./...
//
// Exit status: 0 clean, 1 usage or load failure, 2 diagnostics reported.
// Findings are suppressed only by a `//lint:allow <analyzer> <reason>`
// comment on the offending line or the line above — the reason is
// mandatory; a bare directive suppresses nothing.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"critter/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("critterlint", flag.ContinueOnError)
	versionFlag := fs.String("V", "", "print tool version (vet protocol; use -V=full)")
	flagsJSON := fs.Bool("flags", false, "print the tool's flags as JSON (vet protocol)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	spec := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: critterlint [flags] [package patterns | unit.cfg]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}

	if *versionFlag != "" {
		return printVersion()
	}
	if *flagsJSON {
		// The go command interrogates a vettool for its flags before use.
		fmt.Println(`[{"Name":"analyzers","Bool":false,"Usage":"comma-separated analyzer subset (default: all)"}]`)
		return 0
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := analysis.ByName(*spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "critterlint:", err)
		return 1
	}

	// vet invokes the tool with a single JSON unit-config argument.
	if rest := fs.Args(); len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runUnit(analyzers, rest[0])
	}
	return runPatterns(analyzers, fs.Args())
}

// printVersion implements `critterlint -V=full`, which the go command uses
// as the tool's cache identity: it must change when the binary changes, so
// hash the executable.
func printVersion() int {
	name := "critterlint"
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil)[:12])
	return 0
}

// runPatterns is the standalone mode: load the matching packages from
// source and analyze them.
func runPatterns(analyzers []*analysis.Analyzer, patterns []string) int {
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "critterlint:", err)
		return 1
	}
	pkgs, err := analysis.LoadPatterns(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "critterlint:", err)
		return 1
	}
	exit := 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzers(analyzers, pkg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "critterlint:", err)
			return 1
		}
		for _, d := range diags {
			fmt.Printf("%s: %s (%s)\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
			exit = 2
		}
	}
	return exit
}

// runUnit is the vet-protocol mode: analyze the single package described
// by a JSON unit-config file.
func runUnit(analyzers []*analysis.Analyzer, cfgPath string) int {
	pkg, cfg, err := analysis.LoadUnit(cfgPath)
	if err != nil {
		if cfg != nil && cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "critterlint:", err)
		return 1
	}
	// The go command expects the facts file to exist even though this
	// suite exports no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "critterlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	diags, err := analysis.RunAnalyzers(analyzers, pkg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "critterlint:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
